package jobs

// The acceptance gauntlet for the job service: 21 concurrent jobs of
// every kind against one 4-worker pool, with flaky and slow I/O ends,
// per-job timeouts, mid-run cancellations and one injected panic — every
// job must reach a terminal state, the process and pool must survive, no
// goroutines may leak, successful outputs must be byte-identical to the
// one-shot facade calls, and the journal must replay the whole story
// after a restart.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"microlonys/internal/core"
	"microlonys/internal/faultinject"
)

func TestChaosAcceptance(t *testing.T) {
	arch, data := fixture(t)
	ro := core.RestoreOptions{Mode: core.RestoreNative}

	// One-shot facade results the jobs' outputs must match byte for byte.
	wantTable, _, err := core.RestoreTable(arch.Volume, arch.BootstrapText, "nation", ro)
	if err != nil {
		t.Fatal(err)
	}
	var wantSalvage bytes.Buffer
	if _, err := core.SalvageTo(&wantSalvage, fixtureBag(t), core.SalvageOptions{Mode: core.RestoreNative}); err != nil {
		t.Fatal(err)
	}

	goroutinesBefore := runtime.NumGoroutine()
	journalPath := filepath.Join(t.TempDir(), "jobs.journal")
	m := newManager(t, Config{
		Workers: 4, QueueDepth: 32, MaxRetries: 3,
		BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond,
		JournalPath: journalPath, Seed: 42,
	})

	type expectation struct {
		id    int64
		label string
		state State
		check func(t *testing.T, res Result, snap Snapshot, err error)
	}
	var expects []expectation
	submit := func(label string, state State, req Request, check func(*testing.T, Result, Snapshot, error)) int64 {
		t.Helper()
		id, err := m.Submit(req)
		if err != nil {
			t.Fatalf("submit %s: %v", label, err)
		}
		expects = append(expects, expectation{id: id, label: label, state: state, check: check})
		return id
	}

	// 4 clean full restores.
	for i := 0; i < 4; i++ {
		req := restoreReq(arch)
		req.Timeout = 10 * time.Minute
		submit("restore-clean", StateSucceeded, req,
			func(t *testing.T, res Result, _ Snapshot, _ error) {
				if !bytes.Equal(res.Data, data) {
					t.Error("restore output differs from the one-shot call")
				}
			})
	}

	// 3 archives whose source fails twice with a transient fault — the
	// retry loop must carry them to success.
	payload := testPayload(8192)
	for i := 0; i < 3; i++ {
		flaky := faultinject.NewFlaky(2)
		submit("archive-flaky-source", StateSucceeded, Request{
			Kind: KindArchive,
			Source: func(context.Context) (io.Reader, error) {
				return flaky.Reader(bytes.NewReader(payload)), nil
			},
			ArchiveOptions: core.DefaultOptions(tinyProfile()),
			Timeout:        10 * time.Minute,
		}, func(t *testing.T, res Result, snap Snapshot, _ error) {
			if snap.Retries != 2 {
				t.Errorf("retries %d, want 2", snap.Retries)
			}
			back, _, err := core.RestoreVolume(res.Archived.Volume, res.Archived.BootstrapText, ro)
			if err != nil || !bytes.Equal(back, payload) {
				t.Errorf("flaky archive did not roundtrip: %v", err)
			}
		})
	}

	// 2 restores whose sink fails once transiently, then delivers.
	for i := 0; i < 2; i++ {
		flaky := faultinject.NewFlaky(1)
		var last *bytes.Buffer
		req := restoreReq(arch)
		req.Timeout = 10 * time.Minute
		req.Sink = func(context.Context) (io.Writer, error) {
			last = &bytes.Buffer{} // fresh buffer per attempt; only the last holds the result
			return flaky.Writer(last), nil
		}
		submit("restore-flaky-sink", StateSucceeded, req,
			func(t *testing.T, _ Result, snap Snapshot, _ error) {
				if snap.Retries != 1 {
					t.Errorf("retries %d, want 1", snap.Retries)
				}
				if last == nil || !bytes.Equal(last.Bytes(), data) {
					t.Error("flaky-sink restore did not deliver identical bytes")
				}
			})
	}

	// 2 archives too slow for their deadline.
	for i := 0; i < 2; i++ {
		submit("archive-deadline", StateFailed, Request{
			Kind: KindArchive,
			Source: func(context.Context) (io.Reader, error) {
				return faultinject.SlowReader(bytes.NewReader(testPayload(64*1024)), 20*time.Millisecond), nil
			},
			ArchiveOptions: core.DefaultOptions(tinyProfile()),
			Timeout:        40 * time.Millisecond,
		}, func(t *testing.T, _ Result, snap Snapshot, err error) {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("err %v, want DeadlineExceeded", err)
			}
			if snap.Retries != 0 {
				t.Error("deadline expiry was retried")
			}
		})
	}

	// 2 jobs cancelled mid-run (their source holds until cancellation).
	var cancelIDs []int64
	for i := 0; i < 2; i++ {
		id := submit("cancel-mid-run", StateCancelled, Request{
			Kind: KindArchive,
			Source: func(ctx context.Context) (io.Reader, error) {
				<-ctx.Done()
				return nil, ctx.Err()
			},
			ArchiveOptions: core.DefaultOptions(tinyProfile()),
			Timeout:        10 * time.Minute,
		}, nil)
		cancelIDs = append(cancelIDs, id)
	}

	// 2 range queries, 1 table query, 1 index listing, 1 salvage.
	for i := 0; i < 2; i++ {
		off := 128 + i*1024
		submit("range", StateSucceeded, Request{
			Kind: KindRange, Volume: arch.Volume, BootstrapText: arch.BootstrapText,
			Off: off, Length: 512, RestoreOptions: ro, Timeout: 10 * time.Minute,
		}, func(t *testing.T, res Result, _ Snapshot, _ error) {
			if !bytes.Equal(res.Data, data[off:off+512]) {
				t.Error("range output differs from the one-shot slice")
			}
		})
	}
	submit("table", StateSucceeded, Request{
		Kind: KindTable, Volume: arch.Volume, BootstrapText: arch.BootstrapText,
		Table: "nation", RestoreOptions: ro, Timeout: 10 * time.Minute,
	}, func(t *testing.T, res Result, _ Snapshot, _ error) {
		if !bytes.Equal(res.Data, wantTable) {
			t.Error("table output differs from the one-shot call")
		}
	})
	submit("listindex", StateSucceeded, Request{
		Kind: KindListIndex, Volume: arch.Volume, BootstrapText: arch.BootstrapText,
		RestoreOptions: ro, Timeout: 10 * time.Minute,
	}, func(t *testing.T, res Result, _ Snapshot, _ error) {
		if res.Index == nil || len(res.Index.Sections) == 0 {
			t.Error("listindex returned no sections")
		}
	})
	submit("salvage", StateSucceeded, Request{
		Kind: KindSalvage, Sheets: fixtureBag(t),
		SalvageOptions: core.SalvageOptions{Mode: core.RestoreNative},
		Timeout:        10 * time.Minute,
	}, func(t *testing.T, res Result, _ Snapshot, _ error) {
		if !bytes.Equal(res.Data, wantSalvage.Bytes()) {
			t.Error("salvage output differs from the one-shot call")
		}
	})

	// 1 injected panic.
	submit("panic", StateFailed, Request{
		Kind:           KindArchive,
		Source:         func(context.Context) (io.Reader, error) { panic("chaos: injected panic") },
		ArchiveOptions: core.DefaultOptions(tinyProfile()),
		Timeout:        10 * time.Minute,
	}, func(t *testing.T, _ Result, snap Snapshot, err error) {
		if !errors.Is(err, ErrPanicked) || snap.Panic == "" {
			t.Errorf("panic job: err %v, stack %d bytes", err, len(snap.Panic))
		}
	})

	// 2 restores into permanently failing sinks — no retry, clean failure.
	for i := 0; i < 2; i++ {
		req := restoreReq(arch)
		req.Timeout = 10 * time.Minute
		req.Sink = func(context.Context) (io.Writer, error) {
			return faultinject.Writer(io.Discard, 256), nil
		}
		submit("restore-dead-sink", StateFailed, req,
			func(t *testing.T, _ Result, snap Snapshot, err error) {
				if !errors.Is(err, faultinject.ErrInjected) {
					t.Errorf("err %v, want ErrInjected", err)
				}
				if snap.Attempts != 1 {
					t.Errorf("attempts %d: permanent sink faults must not be retried", snap.Attempts)
				}
			})
	}

	if len(expects) < 20 {
		t.Fatalf("only %d jobs submitted; the gauntlet needs at least 20", len(expects))
	}

	// Fire the mid-run cancellations once their jobs are actually running.
	for _, id := range cancelIDs {
		deadline := time.Now().Add(30 * time.Second)
		for {
			if s, _ := m.Job(id); s.State == StateRunning {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d never started", id)
			}
			time.Sleep(time.Millisecond)
		}
		if err := m.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}

	// Every job must reach its expected terminal state.
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer waitCancel()
	finals := map[int64]Snapshot{}
	for _, ex := range expects {
		res, snap, err := m.Wait(waitCtx, ex.id)
		if !snap.State.Terminal() {
			t.Fatalf("%s (job %d) not terminal: %s", ex.label, ex.id, snap.State)
		}
		if snap.State != ex.state {
			t.Errorf("%s (job %d): state %s, want %s (err %v)", ex.label, ex.id, snap.State, ex.state, err)
		} else if ex.check != nil {
			ex.check(t, res, snap, err)
		}
		finals[ex.id] = snap
	}

	// Drain cleanly, then the journal must tell the same story.
	drain(t, m)
	replayed, err := ReplayJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(expects) {
		t.Fatalf("journal replays %d jobs, want %d", len(replayed), len(expects))
	}
	for _, s := range replayed {
		want, ok := finals[s.ID]
		if !ok {
			t.Fatalf("journal invented job %d", s.ID)
		}
		if s.State != want.State || s.Retries != want.Retries {
			t.Errorf("journal job %d: state %s retries %d, live %s/%d",
				s.ID, s.State, s.Retries, want.State, want.Retries)
		}
	}

	// The pool must be gone: no leaked goroutines.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= goroutinesBefore+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", goroutinesBefore, runtime.NumGoroutine())
}

// TestJournalRestartReplay: a new manager over an old journal recovers
// every job with its terminal state and continues IDs after them.
func TestJournalRestartReplay(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "jobs.journal")

	m := newManager(t, Config{Workers: 1, JournalPath: journalPath})
	okID, err := m.Submit(restoreReqFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	failID, err := m.Submit(Request{
		Kind:           KindArchive,
		Source:         func(context.Context) (io.Reader, error) { panic("boom") },
		ArchiveOptions: core.DefaultOptions(tinyProfile()),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Wait(context.Background(), okID)
	m.Wait(context.Background(), failID)
	drain(t, m)

	m2 := newManager(t, Config{Workers: 1, JournalPath: journalPath})
	rec := m2.Recovered()
	if len(rec) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(rec))
	}
	byID := map[int64]Snapshot{}
	for _, s := range rec {
		byID[s.ID] = s
	}
	if byID[okID].State != StateSucceeded || byID[failID].State != StateFailed {
		t.Fatalf("recovered states %s/%s, want succeeded/failed", byID[okID].State, byID[failID].State)
	}
	if byID[failID].Err == "" {
		t.Fatal("recovered failure lost its error")
	}
	// IDs continue after the replayed history.
	id, err := m2.Submit(restoreReqFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if id <= failID {
		t.Fatalf("new ID %d does not continue after recovered %d", id, failID)
	}
	m2.Wait(context.Background(), id)
	drain(t, m2)
}

// TestJournalCrashArtifacts: a journal that stops mid-story — a job with
// no terminal event, a torn final line — replays to the last good line
// with the unfinished job reported as interrupted.
func TestJournalCrashArtifacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crashed.journal")
	lines := `{"t":"submit","ts":"2026-08-08T10:00:00Z","id":1,"kind":"restore"}
{"t":"start","ts":"2026-08-08T10:00:01Z","id":1,"kind":"restore"}
{"t":"submit","ts":"2026-08-08T10:00:02Z","id":2,"kind":"archive"}
{"t":"done","ts":"2026-08-08T10:00:03Z","id":2,"kind":"archive","state":"succeeded"}
{"t":"submit","ts":"2026-08-08T10:00:04Z","id":3,"ki` // torn mid-write by the crash
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 2 {
		t.Fatalf("replayed %d jobs, want 2 (the torn third must be dropped)", len(rec))
	}
	if rec[0].ID != 1 || rec[0].State != StateInterrupted {
		t.Fatalf("job 1: %+v, want interrupted", rec[0])
	}
	if rec[0].StartedAt.IsZero() {
		t.Fatal("interrupted job lost its start time")
	}
	if rec[1].ID != 2 || rec[1].State != StateSucceeded {
		t.Fatalf("job 2: %+v, want succeeded", rec[1])
	}
	// A missing journal is an empty history, not an error.
	if rec, err := ReplayJournal(filepath.Join(t.TempDir(), "absent")); err != nil || len(rec) != 0 {
		t.Fatalf("absent journal: %v, %d jobs", err, len(rec))
	}
}
