package archindex

import (
	"reflect"
	"testing"

	"microlonys/internal/dbcoder"
)

// FuzzParse feeds malformed index payloads to Parse: truncated, bit
// flipped or arbitrary input must error or yield a self-consistent index,
// never panic. This is the restore side's safety contract — a damaged
// index slot must degrade to the full-restore fallback, not crash.
func FuzzParse(f *testing.F) {
	x := sampleIndex()
	valid, _ := x.Marshal(0)
	f.Add([]byte{})
	f.Add([]byte("MOIX"))
	f.Add(valid)
	f.Add(valid[:5])
	f.Add(valid[:len(valid)/2])
	for _, off := range []int{4, 5, 9, len(valid) - 1} {
		c := append([]byte{}, valid...)
		c[off] ^= 0xFF
		f.Add(c)
	}
	// An uncompressed-looking body: MOIX header over raw DBC1 garbage.
	f.Add(append([]byte("MOIX\x01DBC1"), []byte{0, 0, 0, 64, 1, 2, 3, 4, 5, 6, 7, 8}...))

	f.Fuzz(func(t *testing.T, b []byte) {
		got, err := Parse(b)
		if err != nil {
			if got != nil {
				t.Fatalf("error %v with non-nil index", err)
			}
			return
		}
		// Accepted indexes must satisfy the invariants restore relies on.
		if got.RawLen < 0 || got.GroupData <= 0 || got.GroupData > 255 {
			t.Fatalf("accepted implausible geometry: %+v", got)
		}
		for _, s := range got.Sections {
			if s.Off < 0 || s.Len < 0 || s.Off+s.Len > got.RawLen {
				t.Fatalf("accepted out-of-range section: %+v", s)
			}
		}
		rawOff := 0
		for _, blk := range got.Blocks {
			if blk.RawOff != rawOff || blk.RawLen < 0 || blk.CompOff < 0 ||
				blk.CompOff+blk.CompLen > got.StreamLen {
				t.Fatalf("accepted inconsistent block: %+v", blk)
			}
			rawOff += blk.RawLen
		}
		if len(got.Blocks) > 0 && rawOff != got.RawLen {
			t.Fatalf("accepted blocks covering %d of %d raw bytes", rawOff, got.RawLen)
		}
	})
}

// FuzzRoundTrip pins Marshal→Parse equality for arbitrary geometry under
// arbitrary capacity budgets.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(1), true, 5000, 1200, 100, 17, 3, 22, 0)
	f.Add(uint64(0), false, 0, 0, 0, 1, 0, 0, 100)
	f.Add(uint64(1<<63), true, 1<<20, 1<<18, 1<<10, 255, 255, 65535, 669)

	f.Fuzz(func(t *testing.T, id uint64, compress bool, rawLen, streamLen, sysLen, gd, gp, sf, capacity int) {
		if rawLen < 0 || streamLen < 0 || sysLen < 0 || sf < 0 ||
			gd <= 0 || gd > 255 || gp < 0 || gp > 255 {
			t.Skip()
		}
		x := &Index{
			ArchiveID: id, Compress: compress, RawLen: rawLen,
			StreamLen: streamLen, SystemLen: sysLen,
			GroupData: gd, GroupParity: gp, SheetFrames: sf,
		}
		if rawLen >= 10 {
			x.Sections = []Section{{Kind: SectionTable, Name: "t", Off: 1, Len: rawLen - 2}}
			if compress && streamLen >= 8 {
				x.Blocks = []dbcoder.SeekBlock{
					{RawOff: 0, RawLen: rawLen, CompOff: 4, CompLen: streamLen - 4},
				}
			}
		}
		b, err := x.Marshal(capacity)
		if err != nil {
			return // budget below the core; acceptable
		}
		if capacity > 0 && len(b) > capacity {
			t.Fatalf("marshal emitted %d bytes over capacity %d", len(b), capacity)
		}
		got, err := Parse(b)
		if err != nil {
			t.Fatalf("parse of own marshal: %v", err)
		}
		if got.ArchiveID != x.ArchiveID || got.RawLen != x.RawLen ||
			got.StreamLen != x.StreamLen || got.SystemLen != x.SystemLen ||
			got.GroupData != x.GroupData || got.GroupParity != x.GroupParity ||
			got.SheetFrames != x.SheetFrames || got.Compress != x.Compress {
			t.Fatalf("core fields mismatch:\n got %+v\nwant %+v", got, x)
		}
		if full, err := x.Marshal(0); err == nil {
			if whole, err := Parse(full); err != nil || !reflect.DeepEqual(whole, x) {
				t.Fatalf("unbudgeted round trip mismatch (%v):\n got %+v\nwant %+v", err, whole, x)
			}
		}
	})
}
