package archindex

import (
	"reflect"
	"testing"

	"microlonys/internal/dbcoder"
)

func sampleIndex() *Index {
	blocks := []dbcoder.SeekBlock{
		{RawOff: 0, RawLen: 4096, CompOff: 40, CompLen: 1200},
		{RawOff: 4096, RawLen: 4096, CompOff: 1240, CompLen: 1100},
		{RawOff: 8192, RawLen: 1000, CompOff: 2340, CompLen: 400},
	}
	return &Index{
		ArchiveID:   0xDEADBEEFCAFE0123,
		Compress:    true,
		CatalogSlot: true,
		RawLen:      9192,
		StreamLen:   2740,
		SystemLen:   800,
		GroupData:   17,
		GroupParity: 3,
		SheetFrames: 22,
		Blocks:      blocks,
		Sections: []Section{
			{Kind: SectionTable, Name: "nation", Off: 100, Len: 2000},
			{Kind: SectionTable, Name: "region", Off: 2100, Len: 500},
			{Kind: SectionColumn, Name: "nation.n_name", Off: 100, Len: 2000},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	x := sampleIndex()
	b, err := x.Marshal(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, x) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, x)
	}
	// Emblem payloads are zero-padded to capacity; padding must be ignored.
	padded := append(append([]byte{}, b...), make([]byte, 64)...)
	if _, err := Parse(padded); err != nil {
		t.Fatalf("padded parse: %v", err)
	}
}

func TestMarshalTrimLadder(t *testing.T) {
	x := sampleIndex()
	full, err := x.Marshal(0)
	if err != nil {
		t.Fatal(err)
	}

	// Shrinking budgets walk the ladder: columns dropped, then tables,
	// then blocks; the core always parses.
	prevSections, prevBlocks := len(x.Sections), len(x.Blocks)
	for cap := len(full) - 1; cap > 0; cap /= 2 {
		b, err := x.Marshal(cap)
		if err != nil {
			break // below the minimal core; tested separately
		}
		if len(b) > cap {
			t.Fatalf("cap %d: marshal emitted %d bytes", cap, len(b))
		}
		got, err := Parse(b)
		if err != nil {
			t.Fatalf("cap %d: parse: %v", cap, err)
		}
		if len(got.Sections) > prevSections || len(got.Blocks) > prevBlocks {
			t.Fatalf("cap %d: trim ladder grew content", cap)
		}
		if got.ArchiveID != x.ArchiveID || got.RawLen != x.RawLen || got.GroupData != x.GroupData {
			t.Fatalf("cap %d: core fields lost", cap)
		}
		prevSections, prevBlocks = len(got.Sections), len(got.Blocks)
	}

	// First trim level: columns go, tables stay.
	tablesOnly := x.marshal(flagBlocks|flagSections, filterSections(x.Sections, SectionTable))
	got, err := Parse(tablesOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sections) != 2 || got.Sections[0].Kind != SectionTable {
		t.Fatalf("tables-only trim: %+v", got.Sections)
	}

	if _, err := x.Marshal(4); err == nil {
		t.Fatal("capacity 4: want error for unfittable core")
	}
}

func TestLookupAndTables(t *testing.T) {
	x := sampleIndex()
	if s, ok := x.Lookup("nation"); !ok || s.Kind != SectionTable || s.Len != 2000 {
		t.Fatalf("Lookup(nation) = %+v, %v", s, ok)
	}
	if s, ok := x.Lookup("nation.n_name"); !ok || s.Kind != SectionColumn {
		t.Fatalf("Lookup(nation.n_name) = %+v, %v", s, ok)
	}
	if _, ok := x.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) succeeded")
	}
	if got := x.Tables(); !reflect.DeepEqual(got, []string{"nation", "region"}) {
		t.Fatalf("Tables() = %v", got)
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	x := sampleIndex()
	b, err := x.Marshal(0)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("MOIY\x01"),
		"bad version": append([]byte("MOIX\x63"), b[5:]...),
		"truncated":   b[:len(b)/2],
	}
	for i := 5; i < len(b); i += 7 {
		c := append([]byte{}, b...)
		c[i] ^= 0x80
		cases["bit flip"] = c
		if _, err := Parse(c); err == nil {
			t.Errorf("bit flip at %d accepted", i)
		}
	}
	for name, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRawArchiveIndex(t *testing.T) {
	x := &Index{
		ArchiveID: 7, RawLen: 5000, StreamLen: 5000,
		GroupData: 17, GroupParity: 3,
	}
	b, err := x.Marshal(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, x) {
		t.Fatalf("raw round trip mismatch:\n got %+v\nwant %+v", got, x)
	}
}
