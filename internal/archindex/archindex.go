// Package archindex defines the selective-restore index: the per-sheet
// emblem that maps logical archive bytes to physical volume extents so a
// range or table query can be answered without scanning the whole volume.
//
// The index deliberately stores *parameters*, not tables. Frame placement
// in Micr'Olonys is fully deterministic: given the section lengths, the
// frame capacity, the outer-code group shape, the sheet size and the
// per-sheet reserved slots, the planner's group-cutting arithmetic and the
// volume's sheet-cutting arithmetic can be replayed exactly. The restore
// side re-derives every group's (sheet, frame, stream-offset) extent from
// a dozen integers instead of reading a per-group table that would not fit
// small frames. What cannot be derived is stored explicitly:
//
//   - the DBS1 restart-block table (raw/compressed extents of each
//     independently decodable DBCoder block), for compressed archives;
//   - named sections: byte ranges of SQL-dump tables and columnar columns,
//     so RestoreTable can resolve a name to a raw-byte range.
//
// The record is a "MOIX" header over a DBCoder-compressed body (the block
// and section tables are highly regular, so compression typically shrinks
// them below the capacity of even the smallest emblem). Like the catalog,
// Marshal trims optional parts — column sections first, then table
// sections, then the block table — until the record fits the frame
// capacity, and Parse tolerates every trim level. A restore that needs a
// trimmed part falls back to the full scan path.
package archindex

import (
	"encoding/binary"
	"errors"
	"fmt"

	"microlonys/internal/dbcoder"
)

// Section kinds.
const (
	SectionTable  = 1 // a SQL-dump table's rows region
	SectionColumn = 2 // one column of a table (names the covering rows region)
)

// Section names one byte range of the raw archive. For SectionColumn the
// name is "table.column"; the range is the minimal contiguous cover — the
// owning table's rows region, since row-major dumps interleave columns.
type Section struct {
	Kind int
	Name string
	Off  int // raw-byte offset into the uncompressed archive
	Len  int
}

// Index is the archive's logical→physical map. The geometry fields mirror
// core.Options and the planner's manifest; Blocks is the DBS1 restart
// table (empty for raw archives); Sections are the named byte ranges.
type Index struct {
	ArchiveID   uint64
	Compress    bool
	CatalogSlot bool // sheets also reserve a catalog slot before the index slot
	RawLen      int
	StreamLen   int // compressed stream length (= RawLen for raw archives)
	SystemLen   int
	GroupData   int
	GroupParity int
	SheetFrames int // frames per sheet at archive time; 0 = unbounded

	Blocks   []dbcoder.SeekBlock
	Sections []Section
}

const (
	magic   = "MOIX"
	version = 1

	flagBlocks   = 1 << 0
	flagSections = 1 << 1

	boolCompress    = 1 << 0
	boolCatalogSlot = 1 << 1

	// maxBodyLen bounds the decompressed body size Parse will accept; a
	// legitimate index is a few kilobytes, and the cap keeps a forged
	// header from demanding gigabytes of output.
	maxBodyLen = 1 << 24
)

// ErrIndex reports an unreadable or oversized index record.
var ErrIndex = errors.New("archindex: unreadable index frame")

// Marshal serialises the index into at most capacity bytes, trimming
// optional parts — column sections, then table sections, then the block
// table — until it fits. capacity <= 0 means no limit. An error means
// even the fixed core exceeds the budget.
func (x *Index) Marshal(capacity int) ([]byte, error) {
	tables := filterSections(x.Sections, SectionTable)
	trims := []struct {
		flags    uint8
		sections []Section
	}{
		{flagBlocks | flagSections, x.Sections},
		{flagBlocks | flagSections, tables},
		{flagBlocks, nil},
		{0, nil},
	}
	for _, tr := range trims {
		out := x.marshal(tr.flags, tr.sections)
		if capacity <= 0 || len(out) <= capacity {
			return out, nil
		}
	}
	min := x.marshal(0, nil)
	return nil, fmt.Errorf("archindex: minimal index of %d bytes exceeds frame capacity %d", len(min), capacity)
}

func filterSections(secs []Section, kind int) []Section {
	var out []Section
	for _, s := range secs {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

func (x *Index) marshal(flags uint8, sections []Section) []byte {
	if len(x.Blocks) == 0 {
		flags &^= flagBlocks
	}
	if len(sections) == 0 {
		flags &^= flagSections
	}
	var bools uint8
	if x.Compress {
		bools |= boolCompress
	}
	if x.CatalogSlot {
		bools |= boolCatalogSlot
	}

	body := []byte{flags, bools}
	body = binary.AppendUvarint(body, x.ArchiveID)
	for _, v := range []int{x.RawLen, x.StreamLen, x.SystemLen, x.GroupData, x.GroupParity, x.SheetFrames} {
		body = binary.AppendUvarint(body, uint64(v))
	}
	if flags&flagBlocks != 0 {
		body = binary.AppendUvarint(body, uint64(x.Blocks[0].CompOff))
		body = binary.AppendUvarint(body, uint64(len(x.Blocks)))
		for _, b := range x.Blocks {
			body = binary.AppendUvarint(body, uint64(b.RawLen))
			body = binary.AppendUvarint(body, uint64(b.CompLen))
		}
	}
	if flags&flagSections != 0 {
		body = binary.AppendUvarint(body, uint64(len(sections)))
		for _, s := range sections {
			body = append(body, uint8(s.Kind))
			body = binary.AppendUvarint(body, uint64(len(s.Name)))
			body = append(body, s.Name...)
			body = binary.AppendUvarint(body, uint64(s.Off))
			body = binary.AppendUvarint(body, uint64(s.Len))
		}
	}

	out := make([]byte, 0, len(magic)+1+len(body))
	out = append(out, magic...)
	out = append(out, version)
	return append(out, dbcoder.Compress(body)...)
}

// Parse reads an index frame payload back. Trailing bytes past the
// compressed body (emblem padding) are ignored; integrity rides the
// DBCoder container's CRC. Parse never panics on truncated or bit-flipped
// input, and validates that extents are self-consistent.
func Parse(b []byte) (*Index, error) {
	if len(b) < len(magic)+1 || string(b[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrIndex)
	}
	if b[4] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrIndex, b[4])
	}
	blob := b[5:]
	if n, err := dbcoder.RawLen(blob); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrIndex, err)
	} else if n > maxBodyLen {
		return nil, fmt.Errorf("%w: body of %d bytes", ErrIndex, n)
	}
	body, err := dbcoder.Decompress(blob)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrIndex, err)
	}

	r := reader{b: body}
	flags := r.u8()
	bools := r.u8()
	x := &Index{
		Compress:    bools&boolCompress != 0,
		CatalogSlot: bools&boolCatalogSlot != 0,
	}
	x.ArchiveID = r.uvarint()
	x.RawLen = r.vint()
	x.StreamLen = r.vint()
	x.SystemLen = r.vint()
	x.GroupData = r.vint()
	x.GroupParity = r.vint()
	x.SheetFrames = r.vint()
	if flags&flagBlocks != 0 {
		compOff := r.vint()
		n := r.vint()
		if n < 0 || n > len(r.b) {
			return nil, fmt.Errorf("%w: block table of %d entries", ErrIndex, n)
		}
		rawOff := 0
		x.Blocks = make([]dbcoder.SeekBlock, n)
		for i := range x.Blocks {
			rl, cl := r.vint(), r.vint()
			x.Blocks[i] = dbcoder.SeekBlock{RawOff: rawOff, RawLen: rl, CompOff: compOff, CompLen: cl}
			rawOff += rl
			compOff += cl
		}
		if r.err {
			return nil, fmt.Errorf("%w: truncated block table", ErrIndex)
		}
		if rawOff != x.RawLen || compOff > x.StreamLen {
			return nil, fmt.Errorf("%w: block extents inconsistent with stream", ErrIndex)
		}
	}
	if flags&flagSections != 0 {
		n := r.vint()
		if n < 0 || n > len(r.b) {
			return nil, fmt.Errorf("%w: section table of %d entries", ErrIndex, n)
		}
		x.Sections = make([]Section, n)
		for i := range x.Sections {
			kind := int(r.u8())
			name := string(r.take(r.vint()))
			off, ln := r.vint(), r.vint()
			if r.err {
				return nil, fmt.Errorf("%w: truncated section table", ErrIndex)
			}
			if off < 0 || ln < 0 || off+ln > x.RawLen {
				return nil, fmt.Errorf("%w: section %q extent out of range", ErrIndex, name)
			}
			x.Sections[i] = Section{Kind: kind, Name: name, Off: off, Len: ln}
		}
	}
	if r.err {
		return nil, fmt.Errorf("%w: truncated record", ErrIndex)
	}
	if x.RawLen < 0 || x.StreamLen < 0 || x.SystemLen < 0 ||
		x.GroupData <= 0 || x.GroupData > 255 || x.GroupParity < 0 || x.GroupParity > 255 ||
		x.SheetFrames < 0 {
		return nil, fmt.Errorf("%w: implausible geometry", ErrIndex)
	}
	return x, nil
}

// Lookup returns the named section, preferring table sections when a name
// matches both kinds.
func (x *Index) Lookup(name string) (Section, bool) {
	for _, kind := range []int{SectionTable, SectionColumn} {
		for _, s := range x.Sections {
			if s.Kind == kind && s.Name == name {
				return s, true
			}
		}
	}
	return Section{}, false
}

// Tables returns the table-section names in record order.
func (x *Index) Tables() []string {
	var out []string
	for _, s := range x.Sections {
		if s.Kind == SectionTable {
			out = append(out, s.Name)
		}
	}
	return out
}

// reader is a bounds-checked cursor; err latches on the first read past
// the end.
type reader struct {
	b   []byte
	off int
	err bool
}

func (r *reader) take(n int) []byte {
	if n < 0 || r.off+n > len(r.b) || r.off+n < 0 {
		r.err = true
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = true
		return 0
	}
	r.off += n
	return v
}

// vint reads a uvarint and rejects values that overflow int.
func (r *reader) vint() int {
	v := r.uvarint()
	if v > 1<<62 {
		r.err = true
		return 0
	}
	return int(v)
}
