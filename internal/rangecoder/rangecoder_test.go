package rangecoder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bits := make([]int, 10000)
	for i := range bits {
		// Biased stream exercises adaptation.
		if rng.Intn(10) < 3 {
			bits[i] = 1
		}
	}
	e := NewEncoder()
	pe := Prob(ProbInit)
	for _, b := range bits {
		e.EncodeBit(&pe, b)
	}
	blob := e.Finish()

	d, err := NewDecoder(blob)
	if err != nil {
		t.Fatal(err)
	}
	pd := Prob(ProbInit)
	for i, want := range bits {
		if got := d.DecodeBit(&pd); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
	if pe != pd {
		t.Fatalf("probability state diverged: enc=%d dec=%d", pe, pd)
	}
}

func TestBiasedStreamCompresses(t *testing.T) {
	// 95 % zeros should code well below 1 bit/symbol.
	e := NewEncoder()
	p := Prob(ProbInit)
	rng := rand.New(rand.NewSource(7))
	const n = 100000
	for i := 0; i < n; i++ {
		b := 0
		if rng.Intn(100) < 5 {
			b = 1
		}
		e.EncodeBit(&p, b)
	}
	blob := e.Finish()
	if len(blob) > n/8/2 {
		t.Fatalf("biased stream coded to %d bytes, want < %d", len(blob), n/8/2)
	}
}

func TestDirectBits(t *testing.T) {
	vals := []uint32{0, 1, 0xFFFF, 12345, 1 << 20, 0x7FFFFFFF}
	widths := []int{1, 4, 16, 14, 21, 31}
	e := NewEncoder()
	for i, v := range vals {
		e.EncodeDirect(v, widths[i])
	}
	d, err := NewDecoder(e.Finish())
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		if got := d.DecodeDirect(widths[i]); got != want {
			t.Fatalf("direct %d: got %#x want %#x", i, got, want)
		}
	}
}

func TestBitTreeRoundTrip(t *testing.T) {
	f := func(vals []uint16) bool {
		e := NewEncoder()
		te := NewBitTree(8)
		for _, v := range vals {
			te.Encode(e, uint32(v&0xFF))
		}
		d, err := NewDecoder(e.Finish())
		if err != nil {
			return false
		}
		td := NewBitTree(8)
		for _, v := range vals {
			if td.Decode(d) != uint32(v&0xFF) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBitTreeReverseRoundTrip(t *testing.T) {
	f := func(vals []uint16) bool {
		e := NewEncoder()
		te := NewBitTree(5)
		for _, v := range vals {
			te.EncodeReverse(e, uint32(v&31))
		}
		d, err := NewDecoder(e.Finish())
		if err != nil {
			return false
		}
		td := NewBitTree(5)
		for _, v := range vals {
			if td.DecodeReverse(d) != uint32(v&31) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMixedStream(t *testing.T) {
	// Interleave modelled bits, direct bits and trees — the layout the
	// DBC1 token stream uses.
	rng := rand.New(rand.NewSource(99))
	type op struct {
		kind int
		val  uint32
	}
	ops := make([]op, 2000)
	for i := range ops {
		ops[i] = op{kind: rng.Intn(3), val: uint32(rng.Intn(256))}
	}
	e := NewEncoder()
	pe := NewProbs(4)
	tre := NewBitTree(8)
	for _, o := range ops {
		switch o.kind {
		case 0:
			e.EncodeBit(&pe[o.val%4], int(o.val&1))
		case 1:
			e.EncodeDirect(o.val, 9)
		case 2:
			tre.Encode(e, o.val)
		}
	}
	d, err := NewDecoder(e.Finish())
	if err != nil {
		t.Fatal(err)
	}
	pd := NewProbs(4)
	trd := NewBitTree(8)
	for i, o := range ops {
		switch o.kind {
		case 0:
			if d.DecodeBit(&pd[o.val%4]) != int(o.val&1) {
				t.Fatalf("op %d: bit mismatch", i)
			}
		case 1:
			if d.DecodeDirect(9) != o.val {
				t.Fatalf("op %d: direct mismatch", i)
			}
		case 2:
			if trd.Decode(d) != o.val {
				t.Fatalf("op %d: tree mismatch", i)
			}
		}
	}
}

func TestTruncatedStream(t *testing.T) {
	if _, err := NewDecoder([]byte{0, 1}); err == nil {
		t.Fatal("short stream accepted")
	}
	if _, err := NewDecoder([]byte{1, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad leading byte accepted")
	}
}

func TestProbBounds(t *testing.T) {
	// Adaptation must never push a probability to 0 or the max.
	e := NewEncoder()
	p := Prob(ProbInit)
	for i := 0; i < 100000; i++ {
		e.EncodeBit(&p, 1)
		if p == 0 {
			t.Fatal("probability collapsed to 0")
		}
	}
	p = ProbInit
	for i := 0; i < 100000; i++ {
		e.EncodeBit(&p, 0)
		if p >= 1<<ProbBits {
			t.Fatal("probability reached max")
		}
	}
}

func BenchmarkEncodeBit(b *testing.B) {
	e := NewEncoder()
	p := Prob(ProbInit)
	for i := 0; i < b.N; i++ {
		e.EncodeBit(&p, i&1)
	}
}
