// Package rangecoder implements the adaptive binary range coder used by
// DBCoder (§3.1: "a generic compression scheme based on LZ77 and arithmetic
// coding that can achieve compression performance close to 7-Zip's LZMA").
//
// The coder is the classic LZMA-style carry-less range coder: 32-bit range,
// 11-bit adaptive probabilities with shift-5 updates, and byte-wise
// renormalisation. The exact bit-stream layout matters beyond this process:
// the archived DBDecode program (DynaRisc assembly, internal/dynprog)
// implements the same decoder instruction for instruction, so any change
// here is a format change and must be mirrored there.
package rangecoder

import "errors"

const (
	// ProbBits is the probability precision; probabilities live in
	// [0, 1<<ProbBits) and represent P(bit==0).
	ProbBits = 11
	// ProbInit is the initial (uniform) probability.
	ProbInit = 1 << (ProbBits - 1)
	// MoveBits is the adaptation shift.
	MoveBits = 5

	topValue = 1 << 24
)

// Prob is one adaptive binary probability.
type Prob uint16

// NewProbs returns n probabilities initialised to ProbInit.
func NewProbs(n int) []Prob {
	p := make([]Prob, n)
	for i := range p {
		p[i] = ProbInit
	}
	return p
}

// Encoder writes a range-coded bit stream.
type Encoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
}

// NewEncoder returns a ready encoder.
func NewEncoder() *Encoder {
	return &Encoder{rng: 0xFFFFFFFF, cacheSize: 1}
}

// EncodeBit encodes bit with the adaptive probability *p (updated in place).
func (e *Encoder) EncodeBit(p *Prob, bit int) {
	bound := (e.rng >> ProbBits) * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (1<<ProbBits - *p) >> MoveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> MoveBits
	}
	for e.rng < topValue {
		e.shiftLow()
		e.rng <<= 8
	}
}

// EncodeDirect encodes n bits of v (MSB first) at probability ½ without a
// model.
func (e *Encoder) EncodeDirect(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		e.rng >>= 1
		if v>>uint(i)&1 != 0 {
			e.low += uint64(e.rng)
		}
		for e.rng < topValue {
			e.shiftLow()
			e.rng <<= 8
		}
	}
}

func (e *Encoder) shiftLow() {
	if e.low < 0xFF000000 || e.low >= 1<<32 {
		carry := byte(e.low >> 32)
		for ; e.cacheSize > 0; e.cacheSize-- {
			e.out = append(e.out, e.cache+carry)
			e.cache = 0xFF
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

// Finish flushes the coder and returns the stream. The encoder must not be
// reused afterwards.
func (e *Encoder) Finish() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// Decoder reads a range-coded bit stream produced by Encoder.
type Decoder struct {
	code uint32
	rng  uint32
	in   []byte
	pos  int
	err  error
}

// ErrTruncated reports that the decoder ran past the end of the stream.
var ErrTruncated = errors.New("rangecoder: truncated stream")

// NewDecoder initialises a decoder over the stream p.
func NewDecoder(p []byte) (*Decoder, error) {
	if len(p) < 5 {
		return nil, ErrTruncated
	}
	if p[0] != 0 {
		return nil, errors.New("rangecoder: corrupt stream header")
	}
	d := &Decoder{rng: 0xFFFFFFFF, in: p, pos: 1}
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.in[d.pos])
		d.pos++
	}
	return d, nil
}

func (d *Decoder) nextByte() uint32 {
	if d.pos >= len(d.in) {
		// Tolerate the standard up-to-5-byte flush tail reading past end;
		// record the overrun and let the caller's length check decide.
		d.err = ErrTruncated
		return 0
	}
	b := d.in[d.pos]
	d.pos++
	return uint32(b)
}

// DecodeBit decodes one bit with adaptive probability *p.
func (d *Decoder) DecodeBit(p *Prob) int {
	bound := (d.rng >> ProbBits) * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (1<<ProbBits - *p) >> MoveBits
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> MoveBits
		bit = 1
	}
	for d.rng < topValue {
		d.code = d.code<<8 | d.nextByte()
		d.rng <<= 8
	}
	return bit
}

// DecodeDirect decodes n model-free bits, MSB first.
func (d *Decoder) DecodeDirect(n int) uint32 {
	var v uint32
	for i := 0; i < n; i++ {
		d.rng >>= 1
		bit := uint32(0)
		if d.code >= d.rng {
			d.code -= d.rng
			bit = 1
		}
		v = v<<1 | bit
		for d.rng < topValue {
			d.code = d.code<<8 | d.nextByte()
			d.rng <<= 8
		}
	}
	return v
}

// Err reports whether the decoder consumed bytes past the end of the input.
func (d *Decoder) Err() error { return d.err }

// BitTree codes an n-bit symbol MSB-first through 2^n-1 adaptive
// probabilities (index 1..2^n-1, heap layout).
type BitTree struct {
	probs []Prob
	bits  int
}

// NewBitTree returns a tree coder for n-bit symbols.
func NewBitTree(n int) *BitTree {
	return &BitTree{probs: NewProbs(1 << n), bits: n}
}

// Encode writes symbol v (< 2^n).
func (t *BitTree) Encode(e *Encoder, v uint32) {
	m := uint32(1)
	for i := t.bits - 1; i >= 0; i-- {
		b := int(v >> uint(i) & 1)
		e.EncodeBit(&t.probs[m], b)
		m = m<<1 | uint32(b)
	}
}

// Decode reads a symbol.
func (t *BitTree) Decode(d *Decoder) uint32 {
	m := uint32(1)
	for i := 0; i < t.bits; i++ {
		m = m<<1 | uint32(d.DecodeBit(&t.probs[m]))
	}
	return m - 1<<t.bits
}

// EncodeReverse writes symbol v LSB-first (used for distance low bits).
func (t *BitTree) EncodeReverse(e *Encoder, v uint32) {
	m := uint32(1)
	for i := 0; i < t.bits; i++ {
		b := int(v & 1)
		v >>= 1
		e.EncodeBit(&t.probs[m], b)
		m = m<<1 | uint32(b)
	}
}

// DecodeReverse reads an LSB-first symbol.
func (t *BitTree) DecodeReverse(d *Decoder) uint32 {
	m := uint32(1)
	var v uint32
	for i := 0; i < t.bits; i++ {
		b := uint32(d.DecodeBit(&t.probs[m]))
		m = m<<1 | b
		v |= b << uint(i)
	}
	return v
}
