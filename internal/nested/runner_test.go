package nested

import (
	"bytes"
	"errors"
	"testing"

	"microlonys/dynarisc"
	"microlonys/verisc"
)

// TestRunnerReuseMatchesFresh runs three different guests back to back
// on one Runner — including one that aborts on the host step limit — and
// requires each result to match a fresh package-level Run.
func TestRunnerReuseMatchesFresh(t *testing.T) {
	echo, err := dynarisc.Assemble(ioPrelude + `
	loop:
		LDM  R1, [D1]
		LDI  R2, 0
		CMP  R1, R2
		JZ   done
		LDM  R1, [D0]
		STM  R1, [D2]
		JUMP loop
	done:
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := dynarisc.Assemble(ioPrelude + `
		LDI  R0, 0
	loop:
		LDM  R1, [D1]
		LDI  R2, 0
		CMP  R1, R2
		JZ   done
		LDM  R1, [D0]
		ADD  R0, R1
		JUMP loop
	done:
		STM  R0, [D2]
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner()
	runs := []struct {
		prog  *dynarisc.Program
		input []uint16
	}{
		{echo, []uint16{5, 0, 0xFFFF, 1234}},
		{sum, []uint16{1, 2, 3, 4, 5}},
		{echo, []uint16{42}},
	}
	for i, tc := range runs {
		want, err := Run(tc.prog, tc.input, 1<<18, 0)
		if err != nil {
			t.Fatalf("run %d: fresh: %v", i, err)
		}
		got, err := r.Run(tc.prog, tc.input, 1<<18, 0)
		if err != nil {
			t.Fatalf("run %d: reused: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("run %d: reused output %v, fresh %v", i, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("run %d: output[%d] reused %#x fresh %#x", i, j, got[j], want[j])
			}
		}

		// Abort the Runner mid-guest; the next iteration must still
		// match a fresh machine.
		if _, err := r.Run(tc.prog, tc.input, 1<<18, 50); !errors.Is(err, verisc.ErrStepLimit) {
			t.Fatalf("run %d: step-limited rerun: got %v, want step limit", i, err)
		}
	}
}

// TestRunnerAppendBytes covers the buffer-reusing entry points against
// the word-based reference.
func TestRunnerAppendBytes(t *testing.T) {
	echo, err := dynarisc.Assemble(ioPrelude + `
	loop:
		LDM  R1, [D1]
		LDI  R2, 0
		CMP  R1, R2
		JZ   done
		LDM  R1, [D0]
		STM  R1, [D2]
		JUMP loop
	done:
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("nested append round trip")

	want, err := Run(echo, dynarisc.AppendInWords(nil, payload), 1<<18, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := make([]byte, len(want))
	for i, w := range want {
		wantBytes[i] = byte(w)
	}

	r := NewRunner()
	got, err := r.RunBytesAppendBytes([]byte("pfx:"), echo, payload, 1<<18, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "pfx:"+string(wantBytes) {
		t.Fatalf("RunBytesAppendBytes = %q, want %q", got, "pfx:"+string(wantBytes))
	}

	got2, err := r.RunAppendBytes(nil, echo, dynarisc.AppendInWords(nil, payload), 1<<18, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, wantBytes) {
		t.Fatalf("RunAppendBytes = %q, want %q", got2, wantBytes)
	}
}
