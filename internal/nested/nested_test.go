package nested

import (
	"fmt"
	"testing"
	"testing/quick"

	"microlonys/dynarisc"
	"microlonys/verisc"
)

// ioPrelude points D0/D1/D2 at the DynaRisc I/O window.
const ioPrelude = `
	LDI  R4, 0xFFF0
	MOVE D0, R4
	LDI  R4, 0xFF
	MOVH D0, R4      ; D0 = IOIn
	LDI  R4, 0xFFF1
	MOVE D1, R4
	LDI  R4, 0xFF
	MOVH D1, R4      ; D1 = IOAvail
	LDI  R4, 0xFFF2
	MOVE D2, R4
	LDI  R4, 0xFF
	MOVH D2, R4      ; D2 = IOOut
`

// runBoth executes the program on the reference CPU and under nested
// emulation and requires identical output streams.
func runBoth(t *testing.T, src string, input []uint16) []uint16 {
	t.Helper()
	p, err := dynarisc.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}

	ref := dynarisc.NewCPU(1 << 18)
	ref.MaxSteps = 5_000_000
	if err := ref.LoadProgram(p.Org, p.Words); err != nil {
		t.Fatal(err)
	}
	ref.In = append([]uint16(nil), input...)
	if err := ref.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	got, err := Run(p, input, 1<<18, 500_000_000)
	if err != nil {
		t.Fatalf("nested run: %v", err)
	}

	if len(got) != len(ref.Out) {
		t.Fatalf("output length: nested %d vs reference %d\nnested: %v\nref:    %v",
			len(got), len(ref.Out), got, ref.Out)
	}
	for i := range got {
		if got[i] != ref.Out[i] {
			t.Fatalf("output[%d]: nested %#x vs reference %#x", i, got[i], ref.Out[i])
		}
	}
	return got
}

func TestBuildSucceeds(t *testing.T) {
	p, err := Program()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cells) == 0 {
		t.Fatal("empty emulator")
	}
	if int(p.Org)+len(p.Cells) >= GuestBase {
		t.Fatalf("emulator (%d cells) collides with guest base %d", len(p.Cells), GuestBase)
	}
	t.Logf("DynaRisc-emulator-in-VeRisc: %d cells (%d instructions equivalent)",
		len(p.Cells), len(p.Cells)/2)
}

func TestEcho(t *testing.T) {
	out := runBoth(t, ioPrelude+`
	loop:
		LDM  R1, [D1]
		LDI  R2, 0
		CMP  R1, R2
		JZ   done
		LDM  R1, [D0]
		STM  R1, [D2]
		JUMP loop
	done:
		HALT
	`, []uint16{5, 0, 0xFFFF, 1234})
	if len(out) != 4 || out[2] != 0xFFFF {
		t.Fatalf("echo output %v", out)
	}
}

func TestFibonacci(t *testing.T) {
	out := runBoth(t, ioPrelude+`
		LDI R0, 0
		LDI R1, 1
		LDI R2, 14
		LDI R5, 1
	loop:
		MOVE R3, R1
		ADD  R1, R0
		MOVE R0, R3
		SUB  R2, R5
		JNZ  loop
		STM  R1, [D2]
		HALT
	`, nil)
	if out[0] != 610 {
		t.Fatalf("fib = %d", out[0])
	}
}

func TestCallRetAndJumpTable(t *testing.T) {
	runBoth(t, ioPrelude+`
		LDI  R0, 5
		CALL double
		CALL double
		STM  R0, [D2]

		LDI  R0, table
		MOVE D3, R0
		LDI  R1, 1
		ADD  D3, R1
		LDM  R2, [D3]
		JUMP R2
	entry0:
		LDI  R3, 100
		JUMP fin
	entry1:
		LDI  R3, 200
	fin:
		STM  R3, [D2]
		HALT
	double:
		ADD  R0, R0
		RET
	table:
		.word entry0, entry1
	`, nil)
}

func TestHighMemoryPointers(t *testing.T) {
	// Store/load beyond the 16-bit range: exercises MOVH and 24-bit
	// pointer arithmetic inside the nested emulator.
	out := runBoth(t, ioPrelude+`
		LDI  R0, 0x0000
		MOVE D3, R0
		LDI  R0, 2
		MOVH D3, R0      ; D3 = 0x020000 (128Ki words)
		LDI  R1, 0xABCD
		STM  R1, [D3]
		LDM  R2, [D3]
		STM  R2, [D2]
		; walk the pointer and check adjacent cell is independent
		LDI  R1, 1
		ADD  D3, R1
		LDI  R1, 0x1111
		STM  R1, [D3]
		LDM  R2, [D3]
		STM  R2, [D2]
		HALT
	`, nil)
	if out[0] != 0xABCD || out[1] != 0x1111 {
		t.Fatalf("high memory: %v", out)
	}
}

// aluProgram emits one op plus a flag dump, reading operands from input.
func aluProgram(op string, carryIn bool) string {
	carry := `
		LDI R4, 0
		LDI R5, 0
		CMP R4, R5       ; C=0
	`
	if carryIn {
		carry = `
		LDI R4, 0
		LDI R5, 1
		CMP R4, R5       ; C=1 (borrow)
	`
	}
	return ioPrelude + `
		LDM  R0, [D0]    ; a
		LDM  R1, [D0]    ; b
	` + carry + fmt.Sprintf(`
		%s   R0, R1
	`, op) + `
		STM  R0, [D2]    ; result
		LDI  R2, 0
		JNZ  notz
		LDI  R2, 1
	notz:
		STM  R2, [D2]    ; Z
		LDI  R3, 0
		JNC  notc
		LDI  R3, 1
	notc:
		STM  R3, [D2]    ; C
		STM  R7, [D2]    ; R7 (MUL high word)
		HALT
	`
}

func TestALUDifferential(t *testing.T) {
	ops := []string{"ADD", "ADC", "SUB", "SBB", "CMP", "MUL", "AND", "OR", "XOR", "LSL", "LSR", "ASR", "ROR"}
	// Deterministic corner cases plus a few random pairs per op.
	pairs := [][2]uint16{
		{0, 0}, {1, 1}, {0xFFFF, 1}, {0x8000, 0x8000}, {0x7FFF, 2},
		{0xFFFF, 0xFFFF}, {5, 16}, {0xABCD, 3}, {1, 31}, {0x8001, 15},
	}
	for _, op := range ops {
		for _, carryIn := range []bool{false, true} {
			src := aluProgram(op, carryIn)
			for _, pr := range pairs {
				runBoth(t, src, []uint16{pr[0], pr[1]})
			}
		}
	}
}

func TestALUQuickDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("quick differential skipped in -short mode")
	}
	ops := []string{"ADC", "SBB", "MUL", "XOR", "ROR", "ASR"}
	for _, op := range ops {
		src := aluProgram(op, true)
		f := func(a, b uint16) bool {
			// Bound shift counts to keep runtime sane; correctness for
			// large counts is covered by the fixed pairs above.
			if op == "ROR" || op == "ASR" {
				b &= 31
			}
			p, err := dynarisc.Assemble(src)
			if err != nil {
				return false
			}
			ref := dynarisc.NewCPU(1 << 16)
			ref.MaxSteps = 1_000_000
			ref.LoadProgram(p.Org, p.Words)
			ref.In = []uint16{a, b}
			if err := ref.Run(); err != nil {
				return false
			}
			got, err := Run(p, []uint16{a, b}, 1<<16, 200_000_000)
			if err != nil || len(got) != len(ref.Out) {
				return false
			}
			for i := range got {
				if got[i] != ref.Out[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
			t.Errorf("%s: %v", op, err)
		}
	}
}

func TestPointerWidthALU(t *testing.T) {
	runBoth(t, ioPrelude+`
		LDI  R0, 0xFFFF
		MOVE D3, R0
		LDI  R1, 1
		ADD  D3, R1       ; 0x10000, 24-bit: no carry
		LDI  R2, 0
		JNC  nocarry
		LDI  R2, 1
	nocarry:
		STM  R2, [D2]
		MOVE R3, D3       ; low 16 bits = 0
		STM  R3, [D2]
		; wrap 24-bit
		LDI  R1, 0xFF
		MOVH D3, R1
		LDI  R1, 0xFFFF
		MOVE R0, D3       ; R0 = low16 of D3
		; D3 = 0xFF0000; add 0xFFFF twice then 2 → wrap
		LDI  R1, 0xFFFF
		ADD  D3, R1
		LDI  R1, 1
		ADD  D3, R1       ; 0x1000000 → wraps to 0 with carry
		LDI  R2, 0
		JNC  nc2
		LDI  R2, 1
	nc2:
		STM  R2, [D2]
		HALT
	`, nil)
}

func TestStepLimitPropagates(t *testing.T) {
	p := dynarisc.MustAssemble("loop: JUMP loop")
	_, err := Run(p, nil, 1<<12, 10_000)
	if err == nil {
		t.Fatal("runaway guest did not hit the host step limit")
	}
}

func TestGuestInputFraming(t *testing.T) {
	p := &dynarisc.Program{Org: 7, Words: []uint16{1, 2, 3}}
	in := GuestInput(p, []uint16{9, 8})
	want := []uint32{7, 3, 1, 2, 3, 9, 8}
	if len(in) != len(want) {
		t.Fatalf("framing %v", in)
	}
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("framing %v, want %v", in, want)
		}
	}
}

// TestEmulationOverhead reports the nested slowdown factor — the E8
// ablation's unit-level counterpart.
func TestEmulationOverhead(t *testing.T) {
	src := ioPrelude + `
		LDI R0, 0
		LDI R1, 1
		LDI R2, 2000
	loop:
		ADD R0, R1
		SUB R2, R1
		JNZ loop
		STM R0, [D2]
		HALT
	`
	p := dynarisc.MustAssemble(src)
	ref := dynarisc.NewCPU(1 << 16)
	ref.LoadProgram(p.Org, p.Words)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	prog, _ := Program()
	host := verisc.NewCPU(GuestBase + (1 << 16))
	host.Load(prog.Org, prog.Cells)
	host.In = GuestInput(p, nil)
	if err := host.Run(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(host.Steps) / float64(ref.Steps)
	t.Logf("guest steps=%d, host VeRisc steps=%d, expansion ≈ %.0fx", ref.Steps, host.Steps, ratio)
	if ratio < 10 {
		t.Fatalf("implausibly low nested expansion %.1f", ratio)
	}
}
