// Package nested implements the heart of Olonys: the DynaRisc emulator
// expressed as a VeRisc program (§3.2 of the paper).
//
// The paper's nested emulation strategy minimises future effort: a user
// restoring the archive implements only the four-instruction VeRisc
// machine; the archived instruction stream built here then instantiates a
// full DynaRisc emulator *inside* that machine, which in turn executes the
// archived MOCoder/DBCoder layout decoders. This package generates that
// instruction stream with the verisc.Builder macro layer — every cell of
// the result is one of the four VeRisc instructions or data.
//
// # Guest conventions
//
// The guest (DynaRisc) machine lives inside VeRisc memory at GuestBase,
// one 16-bit guest word per 32-bit cell. The VeRisc input stream carries,
// in order:
//
//	[ guest origin, guest code length, code words..., guest input... ]
//
// After loading the image the emulator enters its fetch/decode/dispatch
// loop. Guest LDM/STM to the DynaRisc I/O addresses are forwarded to the
// host VeRisc ports, so the guest's remaining input is simply the rest of
// the VeRisc input stream and guest output words appear on the VeRisc
// output port.
package nested

import (
	"fmt"
	"sync"

	"microlonys/dynarisc"
	"microlonys/verisc"
)

// GuestBase is the first VeRisc cell of guest memory. The emulator
// program itself comfortably fits below it.
const GuestBase = 1 << 16

// DefaultGuestWords is the default guest memory size in words.
const DefaultGuestWords = 1 << 20

// gen carries the variable references while emitting the emulator.
type gen struct {
	b   *verisc.Builder
	seq int

	gpc, gz, gn, gc      verisc.Ref
	instr, opv, rdv, rsv verisc.Ref
	modev, fw            verisc.Ref
	vrd, vrs             verisc.Ref
	wmask, wsign, wover  verisc.Ref
	res, res32, val      verisc.Ref
	av, bv, acc          verisc.Ref
	cnt, dv, dbit        verisc.Ref
	t1, t2, t3           verisc.Ref
	iv, gorg, glen       verisc.Ref
	hiv, lov             verisc.Ref
	regs                 verisc.Ref
}

func (n *gen) lbl(prefix string) string {
	n.seq++
	return fmt.Sprintf("n_%s_%d", prefix, n.seq)
}

// Build generates the emulator program.
func Build() (*verisc.Program, error) {
	b := verisc.NewBuilder(verisc.ReservedCells)
	n := &gen{b: b}

	n.gpc = b.Var("gpc", 0)
	n.gz = b.Var("gz", 0)
	n.gn = b.Var("gn", 0)
	n.gc = b.Var("gc", 0)
	n.instr = b.Var("instr", 0)
	n.opv = b.Var("opv", 0)
	n.rdv = b.Var("rdv", 0)
	n.rsv = b.Var("rsv", 0)
	n.modev = b.Var("modev", 0)
	n.fw = b.Var("fw", 0)
	n.vrd = b.Var("vrd", 0)
	n.vrs = b.Var("vrs", 0)
	n.wmask = b.Var("wmask", 0)
	n.wsign = b.Var("wsign", 0)
	n.wover = b.Var("wover", 0)
	n.res = b.Var("res", 0)
	n.res32 = b.Var("res32", 0)
	n.val = b.Var("val", 0)
	n.av = b.Var("av", 0)
	n.bv = b.Var("bv", 0)
	n.acc = b.Var("acc", 0)
	n.cnt = b.Var("cnt", 0)
	n.dv = b.Var("dv", 0)
	n.dbit = b.Var("dbit", 0)
	n.t1 = b.Var("t1", 0)
	n.t2 = b.Var("t2", 0)
	n.t3 = b.Var("t3", 0)
	n.iv = b.Var("iv", 0)
	n.gorg = b.Var("gorg", 0)
	n.glen = b.Var("glen", 0)
	n.hiv = b.Var("hiv", 0)
	n.lov = b.Var("lov", 0)
	n.regs = b.Array("regs", 12)

	n.loader()
	n.mainLoop()
	n.handlers()
	n.subs()

	return b.Build()
}

// loader reads [org, len, code...] from input into guest memory.
func (n *gen) loader() {
	b := n.b
	b.InR()
	b.ST(n.gorg)
	b.InR()
	b.ST(n.glen)
	b.LoadImm(0)
	b.ST(n.iv)
	b.Label("loadloop")
	b.LD(n.iv)
	b.JumpIfULT(n.glen, "loadcont")
	b.Goto("loaded")
	b.Label("loadcont")
	b.InR()
	b.ST(n.val)
	b.LD(b.Const(GuestBase))
	b.Add(n.gorg)
	b.Add(n.iv)
	b.StoreIndirect(n.val)
	b.LD(n.iv)
	b.Add(b.Const(1))
	b.ST(n.iv)
	b.Goto("loadloop")
	b.Label("loaded")
	b.LD(n.gorg)
	b.ST(n.gpc)
	// fall through into main
}

// mainLoop fetches, decodes and dispatches one guest instruction.
func (n *gen) mainLoop() {
	b := n.b
	b.Label("main")
	b.CallSub("fetch")
	b.LD(n.fw)
	b.ST(n.instr)

	// Decode: op = instr[15:11], rd = [10:7], rs = [6:3], mode = [2:0].
	n.extract(n.instr, n.opv, n.t3, 5, 2048)
	n.extract(n.t3, n.rdv, n.t2, 4, 128)
	n.extract(n.t2, n.rsv, n.modev, 4, 8)

	// Dispatch through the opcode table.
	b.LD(b.AddrConst("optable"))
	b.Add(n.opv)
	b.LoadIndirect()
	b.ST(verisc.Abs(verisc.CellPC))
}

// extract emits unrolled restoring division: quo = src / weight (bits
// quotient bits), rem = src % weight. Clobbers R and B.
func (n *gen) extract(src, quo, rem verisc.Ref, bits int, weight uint32) {
	b := n.b
	b.LD(src)
	b.ST(rem)
	b.LoadImm(0)
	b.ST(quo)
	for k := bits - 1; k >= 0; k-- {
		skip := n.lbl("xs")
		th := weight << uint(k)
		b.LD(rem)
		b.Sub(b.Const(th))
		b.ST(n.t1) // save rem-th; ST preserves B
		b.JumpIfBorrow(skip)
		b.LD(n.t1)
		b.ST(rem)
		b.LD(quo)
		b.Add(b.Const(1 << uint(k)))
		b.ST(quo)
		b.Label(skip)
	}
}

// setFlag emits: flag = (R != 0) ? 1 : 0. Clobbers R, B.
func (n *gen) setFlag(flag verisc.Ref) {
	b := n.b
	z := n.lbl("fz")
	done := n.lbl("fd")
	b.JumpIfZero(z)
	b.LoadImm(1)
	b.ST(flag)
	b.Goto(done)
	b.Label(z)
	b.LoadImm(0)
	b.ST(flag)
	b.Label(done)
}

// aluPrep loads both operands masked to the destination width:
// av = regs[rd] & wmask, bv = regs[rs] & wmask.
func (n *gen) aluPrep() {
	b := n.b
	b.CallSub("readrd")
	b.CallSub("readrs")
	b.CallSub("setwidth")
	b.LD(n.vrd)
	b.ANDi(n.wmask)
	b.ST(n.av)
	b.LD(n.vrs)
	b.ANDi(n.wmask)
	b.ST(n.bv)
}

// finishALU sets Z/N from res, writes regs[rd] and returns to main.
func (n *gen) finishALU() {
	b := n.b
	b.CallSub("setzn")
	b.CallSub("writerd")
	b.Goto("main")
}

func (n *gen) handlers() {
	n.hHalt()
	n.hMove()
	n.hLdi()
	n.hLdm()
	n.hStm()
	n.hAddSub()
	n.hMul()
	n.hLogic()
	n.hShifts()
	n.hJumps()

	// The dispatch table, in opcode order (must mirror dynarisc's ISA).
	n.b.Table("optable",
		"h_halt", "h_move", "h_ldi", "h_ldm", "h_stm",
		"h_add", "h_adc", "h_sub", "h_sbb", "h_cmp", "h_mul",
		"h_and", "h_or", "h_xor",
		"h_lsl", "h_lsr", "h_asr", "h_ror",
		"h_jump", "h_jz", "h_jnz", "h_jc", "h_jnc",
	)
}

func (n *gen) hHalt() {
	b := n.b
	b.Label("h_halt")
	b.Halt()
}

func (n *gen) hMove() {
	b := n.b
	b.Label("h_move")
	b.LD(n.modev)
	b.ANDi(b.Const(1))
	b.JumpIfZero("move_plain")

	// MOVH Dd, Rs: regs[rd] = regs[rd]&0xFFFF | (regs[rs]&0xFF)<<16.
	b.CallSub("readrd")
	b.CallSub("readrs")
	b.LD(n.vrs)
	b.ANDi(b.Const(0xFF))
	for i := 0; i < 16; i++ { // << 16 by doubling
		b.ST(n.t1)
		b.Add(n.t1)
	}
	b.ST(n.t1)
	b.LD(n.vrd)
	b.ANDi(b.Const(0xFFFF))
	b.Add(n.t1)
	b.ST(n.res)
	b.CallSub("writerd")
	b.Goto("main")

	b.Label("move_plain")
	b.CallSub("readrs")
	b.CallSub("setwidth")
	b.LD(n.vrs)
	b.ANDi(n.wmask)
	b.ST(n.res)
	b.CallSub("writerd")
	b.Goto("main")
}

func (n *gen) hLdi() {
	b := n.b
	b.Label("h_ldi")
	b.CallSub("fetch")
	b.CallSub("setwidth")
	b.LD(n.fw)
	b.ANDi(n.wmask)
	b.ST(n.res)
	b.CallSub("writerd")
	b.Goto("main")
}

func (n *gen) hLdm() {
	b := n.b
	b.Label("h_ldm")
	b.CallSub("readrs") // pointer value
	b.LD(n.vrs)
	b.Sub(b.Const(dynarisc.IOIn))
	b.JumpIfZero("ldm_in")
	b.LD(n.vrs)
	b.Sub(b.Const(dynarisc.IOAvail))
	b.JumpIfZero("ldm_avail")
	b.LD(b.Const(GuestBase))
	b.Add(n.vrs)
	b.LoadIndirect()
	b.ST(n.val)
	b.Goto("ldm_store")
	b.Label("ldm_in")
	b.LD(verisc.Abs(verisc.CellIn))
	b.ST(n.val)
	b.Goto("ldm_store")
	b.Label("ldm_avail")
	b.LD(verisc.Abs(verisc.CellAvail))
	b.ST(n.val)
	b.Label("ldm_store")
	b.CallSub("setwidth")
	b.LD(n.val)
	b.ANDi(b.Const(0xFFFF))
	b.ST(n.res)
	b.CallSub("writerd")
	b.Goto("main")
}

func (n *gen) hStm() {
	b := n.b
	b.Label("h_stm")
	b.CallSub("readrd") // value register
	b.CallSub("readrs") // pointer register
	b.LD(n.vrd)
	b.ANDi(b.Const(0xFFFF))
	b.ST(n.val)
	b.LD(n.vrs)
	b.Sub(b.Const(dynarisc.IOOut))
	b.JumpIfZero("stm_io")
	b.LD(b.Const(GuestBase))
	b.Add(n.vrs)
	b.StoreIndirect(n.val)
	b.Goto("main")
	b.Label("stm_io")
	b.LD(n.val)
	b.OutR()
	b.Goto("main")
}

// hAddSub covers ADD, ADC, SUB, SBB and CMP.
func (n *gen) hAddSub() {
	b := n.b

	// Additions: carry-in prepared in t2.
	b.Label("h_add")
	b.LoadImm(0)
	b.ST(n.t2)
	b.Goto("addcommon")
	b.Label("h_adc")
	b.LD(n.gc)
	b.ST(n.t2)
	b.Label("addcommon")
	n.aluPrep()
	b.LD(n.av)
	b.Add(n.bv)
	b.Add(n.t2)
	b.ST(n.res32)
	b.LD(n.res32)
	b.ANDi(n.wover)
	n.setFlag(n.gc)
	b.LD(n.res32)
	b.ANDi(n.wmask)
	b.ST(n.res)
	n.finishALU()

	// Subtractions: borrow-in prepared in t2; CMP skips the writeback.
	b.Label("h_sub")
	b.LoadImm(0)
	b.ST(n.t2)
	b.Goto("subcommon")
	b.Label("h_sbb")
	b.LD(n.gc)
	b.ST(n.t2)
	b.Goto("subcommon")
	b.Label("h_cmp")
	b.LoadImm(0)
	b.ST(n.t2)
	n.aluPrep()
	n.subCore()
	b.CallSub("setzn")
	b.Goto("main") // CMP: no writeback

	b.Label("subcommon")
	n.aluPrep()
	n.subCore()
	n.finishALU()
}

// subCore computes res = (av - bv - t2) & wmask and gc = borrow.
// R must be disposable; av/bv/t2 prepared.
func (n *gen) subCore() {
	b := n.b
	b.LD(n.t2)
	b.ST(verisc.Abs(verisc.CellB)) // B = borrow-in
	b.LD(n.av)
	b.SBBi(n.bv) // R = av - bv - B (32-bit wrap), B = borrow-out
	b.ST(n.res32)
	b.LD(verisc.Abs(verisc.CellB))
	b.ST(n.gc)
	b.LD(n.res32)
	b.ANDi(n.wmask)
	b.ST(n.res)
}

func (n *gen) hMul() {
	b := n.b
	b.Label("h_mul")
	b.CallSub("readrd")
	b.CallSub("readrs")
	b.LD(n.vrd)
	b.ANDi(b.Const(0xFFFF))
	b.ST(n.av)
	b.LD(n.vrs)
	b.ANDi(b.Const(0xFFFF))
	b.ST(n.bv)
	b.LoadImm(0)
	b.ST(n.acc)
	// Shift-and-add over the 16 multiplier bits; av doubles each round.
	for k := 0; k < 16; k++ {
		skip := n.lbl("mulk")
		b.LD(n.bv)
		b.ANDi(b.Const(1 << uint(k)))
		b.JumpIfZero(skip)
		b.LD(n.acc)
		b.Add(n.av)
		b.ST(n.acc)
		b.Label(skip)
		if k < 15 {
			b.LD(n.av)
			b.ST(n.t1)
			b.Add(n.t1)
			b.ST(n.av)
		}
	}
	// Split the 32-bit product.
	n.extract(n.acc, n.hiv, n.lov, 16, 1<<16)
	// regs[rd] = lo (at destination width), regs[R7] = hi.
	b.CallSub("setwidth")
	b.LD(n.lov)
	b.ANDi(n.wmask)
	b.ST(n.res)
	b.CallSub("writerd")
	b.LD(b.AddrConst("regs"))
	b.Add(b.Const(7))
	b.StoreIndirect(n.hiv)
	// C = hi != 0; Z/N from lo at 16-bit width.
	b.LD(n.hiv)
	n.setFlag(n.gc)
	b.LD(b.Const(0x8000))
	b.ST(n.wsign)
	b.LD(n.lov)
	b.ST(n.res)
	b.CallSub("setzn")
	b.Goto("main")
}

func (n *gen) hLogic() {
	b := n.b

	b.Label("h_and")
	n.aluPrep()
	b.LD(n.av)
	b.ANDi(n.bv)
	b.ST(n.res)
	n.finishALU()

	// OR: a + b - (a & b).
	b.Label("h_or")
	n.aluPrep()
	b.LD(n.av)
	b.ANDi(n.bv)
	b.ST(n.t1)
	b.LD(n.av)
	b.Add(n.bv)
	b.Sub(n.t1)
	b.ST(n.res)
	n.finishALU()

	// XOR: a + b - 2·(a & b).
	b.Label("h_xor")
	n.aluPrep()
	b.LD(n.av)
	b.ANDi(n.bv)
	b.ST(n.t1)
	b.LD(n.av)
	b.Add(n.bv)
	b.Sub(n.t1)
	b.Sub(n.t1)
	b.ST(n.res)
	n.finishALU()
}

func (n *gen) hShifts() {
	b := n.b
	type shift struct {
		label string
		step  func()
	}
	// One runtime loop per opcode; each step mirrors the Go CPU exactly.
	shifts := []shift{
		{"h_lsl", func() {
			// C = msb; res = (res << 1) & mask.
			b.LD(n.res)
			b.ANDi(n.wsign)
			n.setFlag(n.gc)
			b.LD(n.res)
			b.ST(n.t1)
			b.Add(n.t1)
			b.ANDi(n.wmask)
			b.ST(n.res)
		}},
		{"h_lsr", func() {
			n.halveRes()
			b.LD(n.dbit)
			b.ST(n.gc)
		}},
		{"h_asr", func() {
			b.LD(n.res)
			b.ANDi(n.wsign)
			b.ST(n.t3) // sign bit before the shift
			n.halveRes()
			b.LD(n.dbit)
			b.ST(n.gc)
			skip := n.lbl("asr")
			b.LD(n.t3)
			b.JumpIfZero(skip)
			b.LD(n.res)
			b.Add(n.wsign)
			b.ST(n.res)
			b.Label(skip)
		}},
		{"h_ror", func() {
			n.halveRes()
			b.LD(n.dbit)
			b.ST(n.gc)
			skip := n.lbl("ror")
			b.LD(n.dbit)
			b.JumpIfZero(skip)
			b.LD(n.res)
			b.Add(n.wsign)
			b.ST(n.res)
			b.Label(skip)
		}},
	}
	for _, s := range shifts {
		loop := n.lbl("shl")
		done := n.lbl("shd")
		b.Label(s.label)
		n.aluPrep() // av = value, bv = count source
		b.LD(n.av)
		b.ST(n.res)
		b.LD(n.vrs)
		b.ANDi(b.Const(31))
		b.ST(n.cnt)
		b.Label(loop)
		b.LD(n.cnt)
		b.JumpIfZero(done)
		b.LD(n.cnt)
		b.Sub(b.Const(1))
		b.ST(n.cnt)
		s.step()
		b.Goto(loop)
		b.Label(done)
		n.finishALU()
	}
}

// halveRes emits: dbit = res & 1; res >>= 1 (via the div2 subroutine).
func (n *gen) halveRes() {
	b := n.b
	b.LD(n.res)
	b.ST(n.dv)
	b.CallSub("div2")
	b.LD(n.dv)
	b.ST(n.res)
}

func (n *gen) hJumps() {
	b := n.b
	conds := []struct {
		label string
		flag  verisc.Ref
		want  int // jump when flag == want; -1 = always
	}{
		{"h_jump", verisc.Ref{}, -1},
		{"h_jz", n.gz, 1},
		{"h_jnz", n.gz, 0},
		{"h_jc", n.gc, 1},
		{"h_jnc", n.gc, 0},
	}
	for _, c := range conds {
		imm := n.lbl("jimm")
		cond := n.lbl("jcond")
		b.Label(c.label)
		b.LD(n.modev)
		b.ANDi(b.Const(1))
		b.JumpIfZero(imm)
		b.CallSub("readrd")
		b.LD(n.vrd)
		b.ANDi(b.Const(0xFFFF))
		b.ST(n.t1)
		b.Goto(cond)
		b.Label(imm)
		b.CallSub("fetch")
		b.LD(n.fw)
		b.ST(n.t1)
		b.Label(cond)
		switch c.want {
		case -1:
			b.Goto("jtake")
		case 1:
			b.LD(c.flag)
			b.JumpIfNonZero("jtake")
			b.Goto("main")
		case 0:
			b.LD(c.flag)
			b.JumpIfZero("jtake")
			b.Goto("main")
		}
	}
	b.Label("jtake")
	b.LD(n.t1)
	b.ST(n.gpc)
	b.Goto("main")
}

func (n *gen) subs() {
	b := n.b

	// fetch: fw = guest[gpc]; gpc = (gpc + 1) & 0xFFFF.
	b.BeginSub("fetch")
	b.LD(b.Const(GuestBase))
	b.Add(n.gpc)
	b.LoadIndirect()
	b.ST(n.fw)
	b.LD(n.gpc)
	b.Add(b.Const(1))
	b.ANDi(b.Const(0xFFFF))
	b.ST(n.gpc)
	b.RetSub("fetch")

	// readrd: vrd = regs[rdv]; readrs: vrs = regs[rsv].
	b.BeginSub("readrd")
	b.LD(b.AddrConst("regs"))
	b.Add(n.rdv)
	b.LoadIndirect()
	b.ST(n.vrd)
	b.RetSub("readrd")

	b.BeginSub("readrs")
	b.LD(b.AddrConst("regs"))
	b.Add(n.rsv)
	b.LoadIndirect()
	b.ST(n.vrs)
	b.RetSub("readrs")

	// writerd: regs[rdv] = res.
	b.BeginSub("writerd")
	b.LD(b.AddrConst("regs"))
	b.Add(n.rdv)
	b.StoreIndirect(n.res)
	b.RetSub("writerd")

	// setwidth: wmask/wsign/wover from the destination register kind.
	b.BeginSub("setwidth")
	b.LD(n.rdv)
	b.Sub(b.Const(8))
	b.JumpIfBorrow("sw16")
	b.LD(b.Const(0xFFFFFF))
	b.ST(n.wmask)
	b.LD(b.Const(0x800000))
	b.ST(n.wsign)
	b.LD(b.Const(0x1000000))
	b.ST(n.wover)
	b.RetSub("setwidth")
	b.Label("sw16")
	b.LD(b.Const(0xFFFF))
	b.ST(n.wmask)
	b.LD(b.Const(0x8000))
	b.ST(n.wsign)
	b.LD(b.Const(0x10000))
	b.ST(n.wover)
	b.RetSub("setwidth")

	// setzn: gz = (res == 0), gn = (res & wsign) != 0.
	b.BeginSub("setzn")
	b.LD(n.res)
	zl := n.lbl("zn")
	zd := n.lbl("znd")
	b.JumpIfZero(zl)
	b.LoadImm(0)
	b.ST(n.gz)
	b.Goto(zd)
	b.Label(zl)
	b.LoadImm(1)
	b.ST(n.gz)
	b.Label(zd)
	b.LD(n.res)
	b.ANDi(n.wsign)
	n.setFlag(n.gn)
	b.RetSub("setzn")

	// div2: dv = dv >> 1, dbit = old bit 0 (values < 2^24).
	b.BeginSub("div2")
	b.LD(n.dv)
	b.ANDi(b.Const(1))
	b.ST(n.dbit)
	b.LD(n.dv)
	b.Sub(n.dbit)
	b.ST(n.dv)
	// Restoring division by two, unrolled over 24 result bits.
	b.LoadImm(0)
	b.ST(n.t1)
	for k := 23; k >= 0; k-- {
		skip := n.lbl("dv")
		b.LD(n.dv)
		b.Sub(b.Const(2 << uint(k)))
		b.ST(n.t2)
		b.JumpIfBorrow(skip)
		b.LD(n.t2)
		b.ST(n.dv)
		b.LD(n.t1)
		b.Add(b.Const(1 << uint(k)))
		b.ST(n.t1)
		b.Label(skip)
	}
	b.LD(n.t1)
	b.ST(n.dv)
	b.RetSub("div2")
}

var (
	buildOnce sync.Once
	built     *verisc.Program
	buildErr  error
)

// Program returns the emulator image, building it once.
func Program() (*verisc.Program, error) {
	buildOnce.Do(func() { built, buildErr = Build() })
	return built, buildErr
}

// GuestInput frames a DynaRisc program and its input stream for the
// emulator's input port.
func GuestInput(p *dynarisc.Program, input []uint16) []uint32 {
	return AppendGuestInput(make([]uint32, 0, 2+len(p.Words)+len(input)), p, input)
}

// appendGuestFraming appends the input-port header for p — its origin,
// code length and code words — the prefix shared by every guest input.
func appendGuestFraming(dst []uint32, p *dynarisc.Program) []uint32 {
	dst = append(dst, uint32(p.Org), uint32(len(p.Words)))
	for _, w := range p.Words {
		dst = append(dst, uint32(w))
	}
	return dst
}

// AppendGuestInput appends the input-port framing for p followed by the
// guest input words to dst — the companion to GuestInput for callers
// that reuse the framing buffer across runs.
func AppendGuestInput(dst []uint32, p *dynarisc.Program, input []uint16) []uint32 {
	dst = appendGuestFraming(dst, p)
	for _, w := range input {
		dst = append(dst, uint32(w))
	}
	return dst
}

// AppendGuestInputBytes is AppendGuestInput for a byte-stream guest
// input (one byte per word, the archived decoders' convention), skipping
// the intermediate []uint16 conversion.
func AppendGuestInputBytes(dst []uint32, p *dynarisc.Program, input []byte) []uint32 {
	dst = appendGuestFraming(dst, p)
	for _, b := range input {
		dst = append(dst, uint32(b))
	}
	return dst
}

// Runner owns one reusable VeRisc machine and its input framing buffer.
// The restore pipeline keeps one Runner per worker so nested-decoding a
// frame no longer allocates the GuestBase+guestWords cell array (tens of
// megabytes) afresh each time; the machine is Reset between runs, which
// clears only the dirtied cells. A Runner is not safe for concurrent
// use; each goroutine needs its own.
type Runner struct {
	cpu *verisc.CPU
	in  []uint32
}

// NewRunner returns an empty Runner; the machine is allocated lazily on
// first use and grown (never shrunk) to fit the largest guest seen.
func NewRunner() *Runner { return &Runner{} }

// exec prepares the reused machine and executes p to completion; the
// guest's output words remain in r.cpu.Out.
func (r *Runner) exec(guestWords int, maxSteps uint64, frame func([]uint32) []uint32) error {
	prog, err := Program()
	if err != nil {
		return err
	}
	if guestWords <= 0 {
		guestWords = DefaultGuestWords
	}
	need := GuestBase + guestWords
	if r.cpu == nil {
		r.cpu = verisc.NewCPU(need)
	} else {
		r.cpu.Reset()
		r.cpu.EnsureMem(need)
	}
	r.cpu.MaxSteps = maxSteps
	if err := r.cpu.Load(prog.Org, prog.Cells); err != nil {
		return err
	}
	r.in = frame(r.in[:0])
	r.cpu.In = r.in
	if err := r.cpu.Run(); err != nil {
		return fmt.Errorf("nested: %w", err)
	}
	return nil
}

// Run executes a DynaRisc program under the reused nested emulator and
// returns the guest's output words, with the same semantics as the
// package-level Run.
func (r *Runner) Run(p *dynarisc.Program, input []uint16, guestWords int, maxSteps uint64) ([]uint16, error) {
	err := r.exec(guestWords, maxSteps, func(dst []uint32) []uint32 {
		return AppendGuestInput(dst, p, input)
	})
	if err != nil {
		return nil, err
	}
	out := make([]uint16, len(r.cpu.Out))
	for i, w := range r.cpu.Out {
		out[i] = uint16(w)
	}
	return out, nil
}

// RunAppendBytes executes p on a word input stream and appends the
// guest's output bytes (low byte of each word) to dst — one conversion,
// straight from the host machine's output cells into the caller's
// buffer.
func (r *Runner) RunAppendBytes(dst []byte, p *dynarisc.Program, input []uint16, guestWords int, maxSteps uint64) ([]byte, error) {
	err := r.exec(guestWords, maxSteps, func(buf []uint32) []uint32 {
		return AppendGuestInput(buf, p, input)
	})
	if err != nil {
		return nil, err
	}
	return r.cpu.AppendOutBytes(dst), nil
}

// RunBytesAppendBytes is RunAppendBytes for a byte guest input stream,
// skipping the byte→word staging copy on the way in as well.
func (r *Runner) RunBytesAppendBytes(dst []byte, p *dynarisc.Program, input []byte, guestWords int, maxSteps uint64) ([]byte, error) {
	err := r.exec(guestWords, maxSteps, func(buf []uint32) []uint32 {
		return AppendGuestInputBytes(buf, p, input)
	})
	if err != nil {
		return nil, err
	}
	return r.cpu.AppendOutBytes(dst), nil
}

// Run executes a DynaRisc program under the nested emulator and returns
// the guest's output words. guestWords sizes guest memory (0 selects
// DefaultGuestWords); maxSteps bounds host VeRisc steps (0 = unlimited).
func Run(p *dynarisc.Program, input []uint16, guestWords int, maxSteps uint64) ([]uint16, error) {
	return NewRunner().Run(p, input, guestWords, maxSteps)
}
