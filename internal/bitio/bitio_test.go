package bitio

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xFF, 8)
	w.WriteBit(1)
	blob := w.Bytes()

	r := NewReader(blob)
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("got %b", v)
	}
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Fatalf("got %x", v)
	}
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("bit")
	}
	// Padding bits are zero.
	for r.Remaining() > 0 {
		if b, _ := r.ReadBit(); b != 0 {
			t.Fatal("padding not zero")
		}
	}
	if _, err := r.ReadBit(); !errors.Is(err, ErrOutOfBits) {
		t.Fatal("no ErrOutOfBits")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(vals []uint32, widthsRaw []uint8) bool {
		if len(widthsRaw) == 0 {
			return true
		}
		w := NewWriter()
		widths := make([]int, len(vals))
		for i := range vals {
			widths[i] = int(widthsRaw[i%len(widthsRaw)])%32 + 1
			vals[i] &= 1<<uint(widths[i]) - 1
			w.WriteBits(uint64(vals[i]), widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			v, err := r.ReadBits(widths[i])
			if err != nil || v != uint64(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteBytesAligned(t *testing.T) {
	w := NewWriter()
	w.WriteBytes([]byte{1, 2, 3})
	if !bytes.Equal(w.Bytes(), []byte{1, 2, 3}) {
		t.Fatal("aligned write")
	}
}

func TestWriteBytesUnaligned(t *testing.T) {
	w := NewWriter()
	w.WriteBit(1)
	w.WriteBytes([]byte{0xAB})
	blob := w.Bytes()
	r := NewReader(blob)
	r.ReadBit()
	v, _ := r.ReadBits(8)
	if v != 0xAB {
		t.Fatalf("got %x", v)
	}
}

func TestReadBytes(t *testing.T) {
	w := NewWriter()
	w.WriteBytes([]byte{9, 8, 7, 6})
	r := NewReader(w.Bytes())
	got, err := r.ReadBytes(4)
	if err != nil || !bytes.Equal(got, []byte{9, 8, 7, 6}) {
		t.Fatalf("got %v err %v", got, err)
	}
	if _, err := r.ReadBytes(1); err == nil {
		t.Fatal("read past end")
	}
}

func TestReadBytesUnaligned(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	w.WriteBytes([]byte{0xDE, 0xAD})
	r := NewReader(w.Bytes())
	r.ReadBits(3)
	got, err := r.ReadBytes(2)
	if err != nil || !bytes.Equal(got, []byte{0xDE, 0xAD}) {
		t.Fatalf("got %x err %v", got, err)
	}
}

func TestAlign(t *testing.T) {
	r := NewReader([]byte{0xF0, 0x0F})
	r.ReadBits(3)
	r.Align()
	if r.Pos() != 8 {
		t.Fatalf("pos %d", r.Pos())
	}
	v, _ := r.ReadBits(8)
	if v != 0x0F {
		t.Fatalf("got %x", v)
	}
	r.Align() // already aligned: no-op
	if r.Pos() != 16 {
		t.Fatal("align moved past end")
	}
}

func TestLen(t *testing.T) {
	w := NewWriter()
	for i := 0; i < 13; i++ {
		w.WriteBit(i & 1)
	}
	if w.Len() != 13 {
		t.Fatalf("Len = %d", w.Len())
	}
	blob := w.Bytes()
	if len(blob) != 2 {
		t.Fatalf("bytes = %d", len(blob))
	}
}

func TestWriterReusableAfterBytes(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xAA, 8)
	first := len(w.Bytes())
	w.WriteBits(0xBB, 8)
	blob := w.Bytes()
	if len(blob) != first+1 || blob[1] != 0xBB {
		t.Fatalf("writer not reusable: %x", blob)
	}
}

func TestRandomBitStream(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bits := make([]int, 5000)
	w := NewWriter()
	for i := range bits {
		bits[i] = rng.Intn(2)
		w.WriteBit(bits[i])
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil || got != want {
			t.Fatalf("bit %d: got %d want %d err %v", i, got, want, err)
		}
	}
}
