// Package bitio provides MSB-first bit stream readers and writers.
//
// MOCoder's Differential-Manchester modulation and the emblem header both
// operate on bit granularity; the convention throughout Micr'Olonys is
// most-significant-bit first within each byte.
package bitio

import (
	"errors"
	"io"
)

// Writer accumulates bits MSB-first into a byte buffer.
type Writer struct {
	buf  []byte
	cur  byte
	nbit uint // bits currently in cur (0..7)
}

// NewWriter returns an empty bit writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBit appends a single bit (any nonzero b counts as 1).
func (w *Writer) WriteBit(b int) {
	w.cur <<= 1
	if b != 0 {
		w.cur |= 1
	}
	w.nbit++
	if w.nbit == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nbit = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first. n ≤ 64.
func (w *Writer) WriteBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(int(v >> uint(i) & 1))
	}
}

// WriteBytes appends whole bytes (bit-aligned or not).
func (w *Writer) WriteBytes(p []byte) {
	if w.nbit == 0 {
		w.buf = append(w.buf, p...)
		return
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Len returns the number of complete bits written.
func (w *Writer) Len() int { return len(w.buf)*8 + int(w.nbit) }

// Bytes flushes (zero-padding the final partial byte) and returns the buffer.
// The writer remains usable; further writes continue after the padding.
func (w *Writer) Bytes() []byte {
	if w.nbit > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nbit))
		w.cur, w.nbit = 0, 0
	}
	return w.buf
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int // bit position
}

// ErrOutOfBits is returned when a read runs past the end of the buffer.
var ErrOutOfBits = errors.New("bitio: out of bits")

// NewReader returns a reader over p.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// ReadBit returns the next bit (0 or 1).
func (r *Reader) ReadBit() (int, error) {
	if r.pos >= len(r.buf)*8 {
		return 0, ErrOutOfBits
	}
	b := int(r.buf[r.pos>>3] >> uint(7-r.pos&7) & 1)
	r.pos++
	return b, nil
}

// ReadBits returns the next n bits as an unsigned value, MSB first. n ≤ 64.
func (r *Reader) ReadBits(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadBytes reads n whole bytes.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	out := make([]byte, n)
	if r.pos&7 == 0 { // aligned fast path
		start := r.pos >> 3
		if start+n > len(r.buf) {
			return nil, io.ErrUnexpectedEOF
		}
		copy(out, r.buf[start:start+n])
		r.pos += n * 8
		return out, nil
	}
	for i := range out {
		v, err := r.ReadBits(8)
		if err != nil {
			return nil, io.ErrUnexpectedEOF
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.buf)*8 - r.pos }

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.pos }

// Align advances to the next byte boundary.
func (r *Reader) Align() { r.pos = (r.pos + 7) &^ 7 }
