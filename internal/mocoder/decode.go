package mocoder

import (
	"fmt"
	"math"
	"sort"

	"microlonys/internal/emblem"
	"microlonys/internal/rs"
	"microlonys/raster"
)

// Stats reports how hard the decoder had to work on a scan — the
// experiment harness uses it to locate correction cliffs.
type Stats struct {
	Threshold       byte // binarisation threshold used
	Rotation        int  // detected orientation (0, 90, 180, 270 degrees CW)
	ClockViolations int  // Differential-Manchester boundary violations
	BytesCorrected  int  // inner-code errata corrected
	BlocksDecoded   int
}

type point struct{ x, y float64 }

// bilinearMapper maps emblem-relative (u, v) grid coordinates into image
// space by bilinear interpolation between the four detected frame
// corners. It is a concrete value — not a closure — so mapUV inlines
// into the sampling loops that call it tens of thousands of times per
// frame.
type bilinearMapper struct {
	p00, p10, p01, p11 point
}

// mapperFor builds the mapper for a rotation: corner order is the
// detected [TL, TR, BR, BL] in image space; the emblem's own TL sits at
// detected index rot.
func mapperFor(corners [4]point, rot int) bilinearMapper {
	c := corners
	return bilinearMapper{
		p00: c[rot%4],
		p10: c[(rot+1)%4],
		p11: c[(rot+2)%4],
		p01: c[(rot+3)%4],
	}
}

func (m *bilinearMapper) mapUV(u, v float64) point {
	x := (1-u)*(1-v)*m.p00.x + u*(1-v)*m.p10.x + (1-u)*v*m.p01.x + u*v*m.p11.x
	y := (1-u)*(1-v)*m.p00.y + u*(1-v)*m.p10.y + (1-u)*v*m.p01.y + u*v*m.p11.y
	return point{x, y}
}

// moduleSampler samples data-region modules through a mapper with the
// grid constants (border offset, grid span) hoisted once per decode and
// the per-module grid coordinates u, v precomputed per tap (uTab/vTab,
// cached per layout in the scratch) — ten divisions per module in the
// demodulation loop become two table loads.
type moduleSampler struct {
	img        *raster.Gray
	m          bilinearMapper
	bm, gw, gh float64
	uTab, vTab []float64 // [tap*DataW+mx], [tap*DataH+my]
	dw, dh     int
}

func newModuleSampler(img *raster.Gray, m bilinearMapper, s *DecodeScratch, l emblem.Layout) moduleSampler {
	s.ensureSampleTabs(l)
	return moduleSampler{
		img:  img,
		m:    m,
		bm:   float64(emblem.BorderModules + emblem.SeparatorModules),
		gw:   float64(l.GridW()),
		gh:   float64(l.GridH()),
		uTab: s.uTab,
		vTab: s.vTab,
		dw:   l.DataW,
		dh:   l.DataH,
	}
}

// moduleOffsets are the five supersampling taps that ride out noise and
// sub-pixel grid error.
var moduleOffsets = [5][2]float64{{0, 0}, {-0.22, -0.22}, {0.22, -0.22}, {-0.22, 0.22}, {0.22, 0.22}}

// sampleOff returns the mean intensity of data module (mx, my),
// supersampled at five points, with an additional image-horizontal offset
// (pixels) — the per-row correction recovered from the clock signal.
//
// The mapper and the interior bilinear sample are expanded inline — the
// same expressions mapUV and raster.SampleBilinear evaluate, in the same
// order, so the result is bit-identical (TestDecodeWithDifferential pins
// this against the closure/SampleBilinear reference) — because this loop
// runs five times per module across every data module of every frame.
func (sm *moduleSampler) sampleOff(mx, my int, off float64) float64 {
	img := sm.img
	w, h := img.W, img.H
	pix := img.Pix
	var sum float64
	for k := range moduleOffsets {
		u := sm.uTab[k*sm.dw+mx]
		v := sm.vTab[k*sm.dh+my]
		sx := (1-u)*(1-v)*sm.m.p00.x + u*(1-v)*sm.m.p10.x + (1-u)*v*sm.m.p01.x + u*v*sm.m.p11.x
		sy := (1-u)*(1-v)*sm.m.p00.y + u*(1-v)*sm.m.p10.y + (1-u)*v*sm.m.p01.y + u*v*sm.m.p11.y
		sx += off
		x0 := int(math.Floor(sx))
		y0 := int(math.Floor(sy))
		if x0 >= 0 && y0 >= 0 && x0+1 < w && y0+1 < h {
			fx := sx - float64(x0)
			fy := sy - float64(y0)
			i := y0*w + x0
			p00 := float64(pix[i])
			p10 := float64(pix[i+1])
			p01 := float64(pix[i+w])
			p11 := float64(pix[i+w+1])
			sum += p00*(1-fx)*(1-fy) + p10*fx*(1-fy) + p01*(1-fx)*fy + p11*fx*fy
		} else {
			sum += img.SampleBilinear(sx, sy)
		}
	}
	return sum / float64(len(moduleOffsets))
}

// sample is sampleOff with no horizontal correction.
func (sm *moduleSampler) sample(mx, my int) float64 { return sm.sampleOff(mx, my, 0) }

// clockPair is one guaranteed Differential-Manchester boundary: the
// second half-module of a bit and the first half-module of the next, on
// the same serpentine row.
type clockPair struct{ a, b emblem.Point }

// mappedClockPair is a clock boundary's two module centres mapped into
// image space — the offset search shifts these horizontally, so the
// mapping is hoisted out of the per-offset contrast loop.
type mappedClockPair struct{ ax, ay, bx, by float64 }

// DecodeScratch carries the decoder's reusable per-frame state: the
// demodulation buffers (half-module levels, stream bytes, suspicion
// flags, per-row clock offsets), the deinterleave codeword storage, the
// inner-code decode scratch, the frame-detection point buffers, and —
// cached per layout, since they are pure geometry — the serpentine data
// path and the per-row clock-boundary pairs (the path alone is megabytes
// per frame at paper scale). A zero DecodeScratch is ready to use; it
// must not be shared between concurrent decodes. In steady state (same
// layout frame after frame — the restore scan stage) a DecodeWith
// allocates only the returned payload and Stats.
type DecodeScratch struct {
	layout     emblem.Layout // layout the cached geometry belongs to
	path       []emblem.Point
	pairsByRow [][]clockPair

	// Per-tap module grid coordinates, cached under their own layout key
	// (geometry consumers like Rectify need these without paying for the
	// data-path cache).
	tabLayout  emblem.Layout
	uTab, vTab []float64

	lens     []int
	levels   []bool
	stream   []byte
	suspect  []bool
	offs     []float64
	clockQ   []mappedClockPair
	cw       []byte   // deinterleaved codewords, back to back
	blocks   [][]byte // slice views into cw
	erasures [][]int
	rss      rs.DecodeScratch

	// findFrame edge-point buffers (left, right, top, bottom) and the
	// line-fit residual/inlier scratch.
	pts   [4][]point
	resid []float64
	kept  []point
}

// ensureLayout refreshes the cached geometry when the layout changes.
func (s *DecodeScratch) ensureLayout(l emblem.Layout) {
	if s.path != nil && s.layout == l {
		return
	}
	s.layout = l
	s.path = l.DataPath()
	// Differential Manchester places a level transition between the
	// second half-module of each bit and the first half-module of the
	// next, i.e. between consecutive even/odd positions of the serpentine
	// path; serpentine turns (row changes) are skipped.
	s.pairsByRow = make([][]clockPair, l.DataH)
	for i := 1; i+1 < len(s.path); i += 2 {
		a, b := s.path[i], s.path[i+1]
		if a.Y == b.Y {
			s.pairsByRow[a.Y] = append(s.pairsByRow[a.Y], clockPair{a, b})
		}
	}
}

// ensureSampleTabs refreshes the per-tap u/v coordinate tables: entry
// [k*DataW+mx] (resp. [k*DataH+my]) holds exactly the grid coordinate
// sampleOff computed inline before — (bm + m + 0.5 + tap)/gridSpan — so
// the demodulation loop replaces its per-sample divisions with loads.
func (s *DecodeScratch) ensureSampleTabs(l emblem.Layout) {
	if s.uTab != nil && s.tabLayout == l {
		return
	}
	s.tabLayout = l
	bm := float64(emblem.BorderModules + emblem.SeparatorModules)
	gw, gh := float64(l.GridW()), float64(l.GridH())
	if cap(s.uTab) < len(moduleOffsets)*l.DataW {
		s.uTab = make([]float64, len(moduleOffsets)*l.DataW)
	}
	s.uTab = s.uTab[:len(moduleOffsets)*l.DataW]
	if cap(s.vTab) < len(moduleOffsets)*l.DataH {
		s.vTab = make([]float64, len(moduleOffsets)*l.DataH)
	}
	s.vTab = s.vTab[:len(moduleOffsets)*l.DataH]
	for k, o := range moduleOffsets {
		for mx := 0; mx < l.DataW; mx++ {
			s.uTab[k*l.DataW+mx] = (bm + float64(mx) + 0.5 + o[0]) / gw
		}
		for my := 0; my < l.DataH; my++ {
			s.vTab[k*l.DataH+my] = (bm + float64(my) + 0.5 + o[1]) / gh
		}
	}
}

// Decode locates the emblem in a scanned image, demodulates the data
// stream and runs the inner Reed-Solomon correction. The caller supplies
// the layout the emblem was produced with (recorded in the Bootstrap
// document); the scan may be at any resolution or mild distortion.
func Decode(img *raster.Gray, l emblem.Layout) ([]byte, emblem.Header, *Stats, error) {
	return DecodeWith(&DecodeScratch{}, img, l)
}

// DecodeWith is Decode through reusable scratch, for callers decoding
// many frames in a loop (the restore scan stage threads one per worker).
// Results are identical to Decode.
func DecodeWith(s *DecodeScratch, img *raster.Gray, l emblem.Layout) ([]byte, emblem.Header, *Stats, error) {
	if err := l.Validate(); err != nil {
		return nil, emblem.Header{}, nil, err
	}
	s.ensureLayout(l)
	st := &Stats{}
	st.Threshold = img.OtsuThreshold()

	corners, err := findFrame(s, img, st.Threshold, l)
	if err != nil {
		return nil, emblem.Header{}, st, err
	}

	rot, mapper, err := orient(s, img, st.Threshold, corners, l)
	if err != nil {
		return nil, emblem.Header{}, st, err
	}
	st.Rotation = rot * 90

	sm := newModuleSampler(img, mapper, s, l)

	// Local clock recovery (§3.1): Differential Manchester guarantees a
	// transition at every bit boundary, so each data row's sampling phase
	// can be re-locked against scanner transport jitter before the row is
	// demodulated — the self-clocking advantage over absolute grids.
	offs := clockOffsets(s, &sm, l)

	// Sample the data path and demodulate.
	path := s.path
	nbits := l.StreamBits()
	if cap(s.levels) < 2*nbits {
		s.levels = make([]bool, 2*nbits)
	}
	levels := s.levels[:2*nbits]
	thr := float64(st.Threshold)
	for i := 0; i < 2*nbits; i++ {
		p := path[i]
		levels[i] = sm.sampleOff(p.X, p.Y, offs[p.Y]) < thr
	}

	nStream := (nbits + 7) / 8
	if cap(s.stream) < nStream {
		s.stream = make([]byte, nStream)
	}
	stream := s.stream[:nStream]
	if cap(s.suspect) < nStream {
		s.suspect = make([]bool, nStream)
	}
	suspect := s.suspect[:nStream]
	for i := range stream {
		stream[i] = 0
		suspect[i] = false
	}
	prev := false
	for i := 0; i < nbits; i++ {
		h1, h2 := levels[2*i], levels[2*i+1]
		if h1 == prev { // missing boundary transition: clock violation
			st.ClockViolations++
			suspect[i/8] = true
		}
		if h1 != h2 {
			stream[i/8] |= 1 << uint(7-i%8)
		}
		prev = h2
	}

	hdr, err := emblem.RecoverHeader(stream)
	if err != nil {
		return nil, emblem.Header{}, st, err
	}

	// Strip the header block, correct the interleaved inner code.
	hb := emblem.HeaderCopies * emblem.HeaderSize
	cb := codedBytes(l)
	coded := stream[hb:]
	codedSuspect := suspect[hb:]
	if len(coded) > cb {
		coded = coded[:cb]
	}
	s.lens = appendBlockLens(s.lens[:0], cb)
	blocks, erasures := deinterleaveInto(s, coded, codedSuspect)

	capacity := 0
	for _, n := range s.lens {
		capacity += n
	}
	payload := make([]byte, 0, capacity)
	for i, cw := range blocks {
		eras := erasures[i]
		if len(eras) > rs.InnerParity {
			eras = nil // too many hints to be useful; rely on error decoding
		}
		n, err := inner.DecodeWith(&s.rss, cw, eras)
		if err != nil && len(eras) > 0 {
			// Erasure hints can be wrong (clock violations from damage
			// that did not corrupt the byte); retry errors-only.
			n, err = inner.DecodeWith(&s.rss, cw, nil)
		}
		if err != nil {
			return nil, hdr, st, fmt.Errorf("%w: block %d/%d: %v", ErrUncorrectable, i+1, len(blocks), err)
		}
		st.BytesCorrected += n
		st.BlocksDecoded++
		payload = append(payload, cw[:s.lens[i]]...)
	}

	if int(hdr.PayloadLen) > len(payload) {
		return nil, hdr, st, fmt.Errorf("%w: header claims %d payload bytes, capacity %d", emblem.ErrHeader, hdr.PayloadLen, len(payload))
	}
	return payload[:hdr.PayloadLen], hdr, st, nil
}

// clockOffsets estimates, for every data row, the image-horizontal
// sampling offset that re-locks the grid on that row's clock signal.
//
// The offset that maximises the summed contrast across the guaranteed
// bit-boundary transitions (cached per layout in the scratch) is the
// row's local clock phase. Scanner transport jitter is smooth, so each
// row's search window is centred on the previous row's estimate (a
// first-order tracking loop, as in floppy-disk data separators).
func clockOffsets(s *DecodeScratch, sm *moduleSampler, l emblem.Layout) []float64 {
	pairsByRow := s.pairsByRow

	// Image pixels per module, for scaling the search window.
	p0 := sm.m.mapUV(sm.bm/sm.gw, 0.5)
	p1 := sm.m.mapUV((sm.bm+1)/sm.gw, 0.5)
	pxPerModule := math.Hypot(p1.x-p0.x, p1.y-p0.y)
	if pxPerModule <= 0 {
		pxPerModule = float64(l.PxPerModule)
	}
	maxStep := 0.45 * pxPerModule // per-row drift bound (half a module)

	// mapPoint is sampleAt's position arithmetic without the sample: the
	// module centre mapped into image space, identical to mapUV on
	// ((bm + p + 0.5)/grid) — the offset search only shifts the result
	// horizontally, so each strided boundary is mapped once per row
	// instead of once per contrast probe.
	mapPoint := func(p emblem.Point) point {
		u := (sm.bm + float64(p.X) + 0.5) / sm.gw
		v := (sm.bm + float64(p.Y) + 0.5) / sm.gh
		return sm.m.mapUV(u, v)
	}
	img := sm.img
	w, h := img.W, img.H
	pix := img.Pix
	// The contrast probe inlines raster.SampleBilinear's exact interior
	// expression (same loads, same order — bit-identical; border samples
	// fall back): it runs for every boundary at every probed offset.
	contrast := func(q []mappedClockPair, off float64) float64 {
		var s float64
		for _, pr := range q {
			var va, vb float64
			sx, sy := pr.ax+off, pr.ay
			x0 := int(math.Floor(sx))
			y0 := int(math.Floor(sy))
			if x0 >= 0 && y0 >= 0 && x0+1 < w && y0+1 < h {
				fx := sx - float64(x0)
				fy := sy - float64(y0)
				i := y0*w + x0
				p00 := float64(pix[i])
				p10 := float64(pix[i+1])
				p01 := float64(pix[i+w])
				p11 := float64(pix[i+w+1])
				va = p00*(1-fx)*(1-fy) + p10*fx*(1-fy) + p01*(1-fx)*fy + p11*fx*fy
			} else {
				va = img.SampleBilinear(sx, sy)
			}
			sx, sy = pr.bx+off, pr.by
			x0 = int(math.Floor(sx))
			y0 = int(math.Floor(sy))
			if x0 >= 0 && y0 >= 0 && x0+1 < w && y0+1 < h {
				fx := sx - float64(x0)
				fy := sy - float64(y0)
				i := y0*w + x0
				p00 := float64(pix[i])
				p10 := float64(pix[i+1])
				p01 := float64(pix[i+w])
				p11 := float64(pix[i+w+1])
				vb = p00*(1-fx)*(1-fy) + p10*fx*(1-fy) + p01*(1-fx)*fy + p11*fx*fy
			} else {
				vb = img.SampleBilinear(sx, sy)
			}
			s += math.Abs(va - vb)
		}
		return s
	}

	if cap(s.offs) < l.DataH {
		s.offs = make([]float64, l.DataH)
	}
	offs := s.offs[:l.DataH]
	prev := 0.0
	for y := 0; y < l.DataH; y++ {
		pairs := pairsByRow[y]
		if len(pairs) < 2 {
			offs[y] = prev
			continue
		}
		// A few dozen boundaries fix the phase; subsample wide rows so the
		// tracking cost stays proportional to row count, not area.
		stride := 1 + len(pairs)/48
		q := s.clockQ[:0]
		for i := 0; i < len(pairs); i += stride {
			pr := pairs[i]
			a, b := mapPoint(pr.a), mapPoint(pr.b)
			q = append(q, mappedClockPair{a.x, a.y, b.x, b.y})
		}
		s.clockQ = q
		// Coarse search around the previous row's phase, then refine.
		best, bestScore := prev, contrast(q, prev)
		step := maxStep / 3
		for d := -maxStep; d <= maxStep; d += step {
			if s := contrast(q, prev+d); s > bestScore {
				best, bestScore = prev+d, s
			}
		}
		for _, d := range []float64{-step / 2, -step / 4, step / 4, step / 2} {
			if s := contrast(q, best+d); s > bestScore {
				best, bestScore = best+d, s
			}
		}
		offs[y] = best
		prev = best
	}
	return offs
}

// Edge-scan directions for findFrame: which border the scan walks toward.
const (
	edgeLeft = iota
	edgeRight
	edgeTop
	edgeBottom
)

// edgeScan walks inward from one side of the image along sampled scan
// lines, recording the subpixel position where the black border begins on
// each. Points are appended to pts as (lineCoord, edgeCoord).
func edgeScan(pts []point, img *raster.Gray, thr byte, side, n, limit, run int) []point {
	pts = pts[:0]
	// Every scanned coordinate is in bounds by construction (lines run
	// over the middle 70% of one axis, depth over at most half the
	// other), so the intensity reads index Pix directly — the same bytes
	// raster.At returns for in-range positions.
	pix, w, h := img.Pix, img.W, img.H
	at := func(i, j int) byte {
		switch side {
		case edgeLeft:
			return pix[i*w+j]
		case edgeRight:
			return pix[i*w+(w-1-j)]
		case edgeTop:
			return pix[j*w+i]
		default: // edgeBottom
			return pix[(h-1-j)*w+i]
		}
	}
	lo, hi := n*15/100, n*85/100
	step := maxInt(1, (hi-lo)/160)
	for i := lo; i < hi; i += step {
		streak := 0
		for j := 0; j < limit; j++ {
			if at(i, j) < thr {
				streak++
				if streak >= run {
					j0 := j - streak + 1
					// Subpixel refinement: interpolate where the
					// intensity profile crosses the threshold.
					edge := float64(j0) - 0.5
					if j0 > 0 {
						a := float64(at(i, j0-1))
						b := float64(at(i, j0))
						if a > b {
							edge = float64(j0) - 1 + (a-float64(thr))/(a-b)
						}
					}
					pts = append(pts, point{float64(i), edge})
					break
				}
			} else {
				streak = 0
			}
		}
	}
	return pts
}

// findFrame locates the outer corners of the black border by fitting lines
// to its four edges.
func findFrame(s *DecodeScratch, img *raster.Gray, thr byte, l emblem.Layout) ([4]point, error) {
	var corners [4]point

	// Expected border thickness in pixels, scale-free.
	approxPxX := float64(img.W) / float64(l.FullModulesW())
	approxPxY := float64(img.H) / float64(l.FullModulesH())
	runX := maxInt(2, int(approxPxX*float64(emblem.BorderModules)/2))
	runY := maxInt(2, int(approxPxY*float64(emblem.BorderModules)/2))

	s.pts[0] = edgeScan(s.pts[0], img, thr, edgeLeft, img.H, img.W/2, runX)
	s.pts[1] = edgeScan(s.pts[1], img, thr, edgeRight, img.H, img.W/2, runX)
	s.pts[2] = edgeScan(s.pts[2], img, thr, edgeTop, img.W, img.H/2, runY)
	s.pts[3] = edgeScan(s.pts[3], img, thr, edgeBottom, img.W, img.H/2, runY)
	left, right, top, bottom := s.pts[0], s.pts[1], s.pts[2], s.pts[3]

	minPts := 8
	if len(left) < minPts || len(right) < minPts || len(top) < minPts || len(bottom) < minPts {
		return corners, ErrNoEmblem
	}

	// Robust fits: edge = a·line + b.
	la, lb, ok1 := fitLine(s, left)
	ra, rbI, ok2 := fitLine(s, right)
	ta, tb, ok3 := fitLine(s, top)
	ba, bb, ok4 := fitLine(s, bottom)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return corners, ErrNoEmblem
	}
	// Convert mirrored scans back to absolute coordinates.
	rb := float64(img.W-1) - rbI
	ra = -ra
	bbAbs := float64(img.H-1) - bb
	baAbs := -ba

	// Intersections: left edge is x = la·y + lb; top edge is y = ta·x + tb.
	intersect := func(ea, eb, fa, fb float64) (point, bool) {
		// x = ea·y + eb ; y = fa·x + fb  ⇒  x = ea·(fa·x+fb) + eb
		den := 1 - ea*fa
		if math.Abs(den) < 1e-9 {
			return point{}, false
		}
		x := (ea*fb + eb) / den
		y := fa*x + fb
		return point{x, y}, true
	}
	tl, k1 := intersect(la, lb, ta, tb)
	tr, k2 := intersect(ra, rb, ta, tb)
	br, k3 := intersect(ra, rb, baAbs, bbAbs)
	bl, k4 := intersect(la, lb, baAbs, bbAbs)
	if !k1 || !k2 || !k3 || !k4 {
		return corners, ErrNoEmblem
	}

	// Sanity: the rectangle must occupy a plausible area.
	w := math.Hypot(tr.x-tl.x, tr.y-tl.y)
	h := math.Hypot(bl.x-tl.x, bl.y-tl.y)
	if w < 8 || h < 8 || w > float64(img.W)*1.2 || h > float64(img.H)*1.2 {
		return corners, ErrNoEmblem
	}
	corners = [4]point{tl, tr, br, bl}
	return corners, nil
}

// fitLS least-squares fits edge = a·line + b.
func fitLS(ps []point) (float64, float64, bool) {
	n := float64(len(ps))
	if n < 4 {
		return 0, 0, false
	}
	var sx, sy, sxx, sxy float64
	for _, p := range ps {
		sx += p.x
		sy += p.y
		sxx += p.x * p.x
		sxy += p.x * p.y
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-9 {
		return 0, 0, false
	}
	a := (n*sxy - sx*sy) / den
	return a, (sy - a*sx) / n, true
}

// fitLine least-squares fits edge = a·line + b with one outlier-rejection
// pass (dust in the quiet zone produces spurious early edges).
func fitLine(s *DecodeScratch, pts []point) (a, b float64, ok bool) {
	a, b, ok = fitLS(pts)
	if !ok {
		return
	}
	// Reject points deviating by more than max(2px, 3·MAD) and refit.
	s.resid = s.resid[:0]
	for _, p := range pts {
		s.resid = append(s.resid, math.Abs(p.y-(a*p.x+b)))
	}
	mad := median(s.resid)
	tol := math.Max(2, 3*mad)
	s.kept = s.kept[:0]
	for _, p := range pts {
		if math.Abs(p.y-(a*p.x+b)) <= tol {
			s.kept = append(s.kept, p)
		}
	}
	if len(s.kept) >= 4 && len(s.kept) < len(pts) {
		if a2, b2, ok2 := fitLS(s.kept); ok2 {
			return a2, b2, true
		}
	}
	return a, b, true
}

// median returns the median of v, reordering v in place — callers pass
// scratch whose order they no longer need, so the old per-call copy (and
// its O(n²) insertion sort, ~3% of a frame decode) is gone. Any sort
// yields the same order statistic, so the value is unchanged.
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sort.Float64s(v)
	return v[len(v)/2]
}

// orient determines the emblem rotation by matching the four corner marks
// under each of the four possible rotations, returning the rotation index
// (multiples of 90° clockwise) and the grid→image mapper.
func orient(s *DecodeScratch, img *raster.Gray, thr byte, corners [4]point, l emblem.Layout) (int, bilinearMapper, error) {
	boxOrigins := [4][2]int{
		{0, 0},
		{l.DataW - emblem.CornerBox, 0},
		{l.DataW - emblem.CornerBox, l.DataH - emblem.CornerBox},
		{0, l.DataH - emblem.CornerBox},
	}
	var pats [4][emblem.CornerBox][emblem.CornerBox]bool
	for c := range pats {
		pats[c] = emblem.CornerPattern(c)
	}

	fthr := float64(thr)
	bestRot, bestScore := -1, 1<<30
	for rot := 0; rot < 4; rot++ {
		sm := newModuleSampler(img, mapperFor(corners, rot), s, l)
		score := 0
		// The mismatch count only grows, so a rotation that has already
		// exceeded the best score cannot win (ties keep scoring, so the
		// strict < pick below sees the same scores) — wrong rotations
		// abandon after a handful of modules instead of sampling all four
		// corner marks.
		for c := 0; c < 4 && score <= bestScore; c++ {
			pat := &pats[c]
			for y := 0; y < emblem.CornerBox && score <= bestScore; y++ {
				for x := 0; x < emblem.CornerBox; x++ {
					v := sm.sample(boxOrigins[c][0]+x, boxOrigins[c][1]+y)
					got := v < fthr
					if got != pat[y][x] {
						score++
					}
				}
			}
		}
		if score < bestScore {
			bestScore, bestRot = score, rot
		}
	}
	totalModules := 4 * emblem.CornerBox * emblem.CornerBox
	if bestScore > totalModules/4 {
		return 0, bilinearMapper{}, fmt.Errorf("%w: corner marks unreadable (best score %d/%d)", ErrNoEmblem, bestScore, totalModules)
	}
	return bestRot, mapperFor(corners, bestRot), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
