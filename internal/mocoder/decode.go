package mocoder

import (
	"fmt"
	"math"

	"microlonys/internal/emblem"
	"microlonys/internal/rs"
	"microlonys/raster"
)

// Stats reports how hard the decoder had to work on a scan — the
// experiment harness uses it to locate correction cliffs.
type Stats struct {
	Threshold       byte // binarisation threshold used
	Rotation        int  // detected orientation (0, 90, 180, 270 degrees CW)
	ClockViolations int  // Differential-Manchester boundary violations
	BytesCorrected  int  // inner-code errata corrected
	BlocksDecoded   int
}

type point struct{ x, y float64 }

// Decode locates the emblem in a scanned image, demodulates the data
// stream and runs the inner Reed-Solomon correction. The caller supplies
// the layout the emblem was produced with (recorded in the Bootstrap
// document); the scan may be at any resolution or mild distortion.
func Decode(img *raster.Gray, l emblem.Layout) ([]byte, emblem.Header, *Stats, error) {
	if err := l.Validate(); err != nil {
		return nil, emblem.Header{}, nil, err
	}
	st := &Stats{}
	st.Threshold = img.OtsuThreshold()

	corners, err := findFrame(img, st.Threshold, l)
	if err != nil {
		return nil, emblem.Header{}, st, err
	}

	rot, mapper, err := orient(img, st.Threshold, corners, l)
	if err != nil {
		return nil, emblem.Header{}, st, err
	}
	st.Rotation = rot * 90

	// Local clock recovery (§3.1): Differential Manchester guarantees a
	// transition at every bit boundary, so each data row's sampling phase
	// can be re-locked against scanner transport jitter before the row is
	// demodulated — the self-clocking advantage over absolute grids.
	offs := clockOffsets(img, mapper, l)

	// Sample the data path and demodulate.
	path := l.DataPath()
	nbits := l.StreamBits()
	levels := make([]bool, 2*nbits)
	for i := 0; i < 2*nbits; i++ {
		p := path[i]
		levels[i] = sampleModuleOff(img, mapper, p.X, p.Y, l, offs[p.Y]) < float64(st.Threshold)
	}

	stream := make([]byte, (nbits+7)/8)
	suspect := make([]bool, len(stream))
	prev := false
	for i := 0; i < nbits; i++ {
		h1, h2 := levels[2*i], levels[2*i+1]
		if h1 == prev { // missing boundary transition: clock violation
			st.ClockViolations++
			suspect[i/8] = true
		}
		if h1 != h2 {
			stream[i/8] |= 1 << uint(7-i%8)
		}
		prev = h2
	}

	hdr, err := emblem.RecoverHeader(stream)
	if err != nil {
		return nil, emblem.Header{}, st, err
	}

	// Strip the header block, correct the interleaved inner code.
	hb := emblem.HeaderCopies * emblem.HeaderSize
	cb := codedBytes(l)
	coded := stream[hb:]
	codedSuspect := suspect[hb:]
	if len(coded) > cb {
		coded = coded[:cb]
	}
	lens := blockLens(cb)
	blocks, erasures := deinterleave(coded, codedSuspect, lens)

	payload := make([]byte, 0, Capacity(l))
	for i, cw := range blocks {
		eras := erasures[i]
		if len(eras) > rs.InnerParity {
			eras = nil // too many hints to be useful; rely on error decoding
		}
		n, err := inner.Decode(cw, eras)
		if err != nil && len(eras) > 0 {
			// Erasure hints can be wrong (clock violations from damage
			// that did not corrupt the byte); retry errors-only.
			n, err = inner.Decode(cw, nil)
		}
		if err != nil {
			return nil, hdr, st, fmt.Errorf("%w: block %d/%d: %v", ErrUncorrectable, i+1, len(blocks), err)
		}
		st.BytesCorrected += n
		st.BlocksDecoded++
		payload = append(payload, cw[:lens[i]]...)
	}

	if int(hdr.PayloadLen) > len(payload) {
		return nil, hdr, st, fmt.Errorf("%w: header claims %d payload bytes, capacity %d", emblem.ErrHeader, hdr.PayloadLen, len(payload))
	}
	return payload[:hdr.PayloadLen], hdr, st, nil
}

// sampleModule returns the mean intensity of a data module, supersampled
// at five points to ride out noise and sub-pixel grid error.
func sampleModule(img *raster.Gray, mapper func(u, v float64) point, mx, my int, l emblem.Layout) float64 {
	return sampleModuleOff(img, mapper, mx, my, l, 0)
}

// sampleModuleOff samples a module with an additional image-horizontal
// offset (pixels) — the per-row correction recovered from the clock
// signal.
func sampleModuleOff(img *raster.Gray, mapper func(u, v float64) point, mx, my int, l emblem.Layout, off float64) float64 {
	bm := float64(emblem.BorderModules + emblem.SeparatorModules)
	gw, gh := float64(l.GridW()), float64(l.GridH())
	var sum float64
	offs := [5][2]float64{{0, 0}, {-0.22, -0.22}, {0.22, -0.22}, {-0.22, 0.22}, {0.22, 0.22}}
	for _, o := range offs {
		u := (bm + float64(mx) + 0.5 + o[0]) / gw
		v := (bm + float64(my) + 0.5 + o[1]) / gh
		p := mapper(u, v)
		sum += img.SampleBilinear(p.x+off, p.y)
	}
	return sum / float64(len(offs))
}

// clockOffsets estimates, for every data row, the image-horizontal
// sampling offset that re-locks the grid on that row's clock signal.
//
// Differential Manchester places a level transition between the second
// half-module of each bit and the first half-module of the next, i.e.
// between consecutive even/odd positions of the serpentine path. The
// offset that maximises the summed contrast across those guaranteed
// boundaries is the row's local clock phase. Scanner transport jitter is
// smooth, so each row's search window is centred on the previous row's
// estimate (a first-order tracking loop, as in floppy-disk data
// separators).
func clockOffsets(img *raster.Gray, mapper func(u, v float64) point, l emblem.Layout) []float64 {
	type pair struct{ a, b emblem.Point }
	path := l.DataPath()
	pairsByRow := make([][]pair, l.DataH)
	for i := 1; i+1 < len(path); i += 2 {
		a, b := path[i], path[i+1] // boundary: second half of bit ↔ first half of next
		if a.Y == b.Y {            // skip serpentine turns
			pairsByRow[a.Y] = append(pairsByRow[a.Y], pair{a, b})
		}
	}

	// Image pixels per module, for scaling the search window.
	bm := float64(emblem.BorderModules + emblem.SeparatorModules)
	gw := float64(l.GridW())
	p0 := mapper(bm/gw, 0.5)
	p1 := mapper((bm+1)/gw, 0.5)
	pxPerModule := math.Hypot(p1.x-p0.x, p1.y-p0.y)
	if pxPerModule <= 0 {
		pxPerModule = float64(l.PxPerModule)
	}
	maxStep := 0.45 * pxPerModule // per-row drift bound (half a module)

	sampleAt := func(p emblem.Point, off float64) float64 {
		u := (bm + float64(p.X) + 0.5) / gw
		v := (bm + float64(p.Y) + 0.5) / float64(l.GridH())
		q := mapper(u, v)
		return img.SampleBilinear(q.x+off, q.y)
	}
	contrast := func(pairs []pair, off float64) float64 {
		// A few dozen boundaries fix the phase; subsample wide rows so the
		// tracking cost stays proportional to row count, not area.
		stride := 1 + len(pairs)/48
		var s float64
		for i := 0; i < len(pairs); i += stride {
			pr := pairs[i]
			s += math.Abs(sampleAt(pr.a, off) - sampleAt(pr.b, off))
		}
		return s
	}

	offs := make([]float64, l.DataH)
	prev := 0.0
	for y := 0; y < l.DataH; y++ {
		pairs := pairsByRow[y]
		if len(pairs) < 2 {
			offs[y] = prev
			continue
		}
		// Coarse search around the previous row's phase, then refine.
		best, bestScore := prev, contrast(pairs, prev)
		step := maxStep / 3
		for d := -maxStep; d <= maxStep; d += step {
			if s := contrast(pairs, prev+d); s > bestScore {
				best, bestScore = prev+d, s
			}
		}
		for _, d := range []float64{-step / 2, -step / 4, step / 4, step / 2} {
			if s := contrast(pairs, best+d); s > bestScore {
				best, bestScore = best+d, s
			}
		}
		offs[y] = best
		prev = best
	}
	return offs
}

// findFrame locates the outer corners of the black border by fitting lines
// to its four edges.
func findFrame(img *raster.Gray, thr byte, l emblem.Layout) ([4]point, error) {
	var corners [4]point
	dark := func(x, y int) bool { return img.At(x, y) < thr }

	// Expected border thickness in pixels, scale-free.
	approxPxX := float64(img.W) / float64(l.FullModulesW())
	approxPxY := float64(img.H) / float64(l.FullModulesH())
	runX := maxInt(2, int(approxPxX*float64(emblem.BorderModules)/2))
	runY := maxInt(2, int(approxPxY*float64(emblem.BorderModules)/2))

	scan := func(n int, intensity func(i, j int) byte, limit int, run int) []point {
		var pts []point
		lo, hi := n*15/100, n*85/100
		step := maxInt(1, (hi-lo)/160)
		for i := lo; i < hi; i += step {
			streak := 0
			for j := 0; j < limit; j++ {
				if intensity(i, j) < thr {
					streak++
					if streak >= run {
						j0 := j - streak + 1
						// Subpixel refinement: interpolate where the
						// intensity profile crosses the threshold.
						edge := float64(j0) - 0.5
						if j0 > 0 {
							a := float64(intensity(i, j0-1))
							b := float64(intensity(i, j0))
							if a > b {
								edge = float64(j0) - 1 + (a-float64(thr))/(a-b)
							}
						}
						pts = append(pts, point{float64(i), edge})
						break
					}
				} else {
					streak = 0
				}
			}
		}
		return pts
	}
	_ = dark

	// Each scan returns points as (lineCoord, edgeCoord).
	left := scan(img.H, func(y, x int) byte { return img.At(x, y) }, img.W/2, runX)
	right := scan(img.H, func(y, x int) byte { return img.At(img.W-1-x, y) }, img.W/2, runX)
	top := scan(img.W, func(x, y int) byte { return img.At(x, y) }, img.H/2, runY)
	bottom := scan(img.W, func(x, y int) byte { return img.At(x, img.H-1-y) }, img.H/2, runY)

	minPts := 8
	if len(left) < minPts || len(right) < minPts || len(top) < minPts || len(bottom) < minPts {
		return corners, ErrNoEmblem
	}

	// Robust fits: edge = a·line + b.
	la, lb, ok1 := fitLine(left)
	ra, rbI, ok2 := fitLine(right)
	ta, tb, ok3 := fitLine(top)
	ba, bb, ok4 := fitLine(bottom)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return corners, ErrNoEmblem
	}
	// Convert mirrored scans back to absolute coordinates.
	rb := float64(img.W-1) - rbI
	ra = -ra
	bbAbs := float64(img.H-1) - bb
	baAbs := -ba

	// Intersections: left edge is x = la·y + lb; top edge is y = ta·x + tb.
	intersect := func(ea, eb, fa, fb float64) (point, bool) {
		// x = ea·y + eb ; y = fa·x + fb  ⇒  x = ea·(fa·x+fb) + eb
		den := 1 - ea*fa
		if math.Abs(den) < 1e-9 {
			return point{}, false
		}
		x := (ea*fb + eb) / den
		y := fa*x + fb
		return point{x, y}, true
	}
	tl, k1 := intersect(la, lb, ta, tb)
	tr, k2 := intersect(ra, rb, ta, tb)
	br, k3 := intersect(ra, rb, baAbs, bbAbs)
	bl, k4 := intersect(la, lb, baAbs, bbAbs)
	if !k1 || !k2 || !k3 || !k4 {
		return corners, ErrNoEmblem
	}

	// Sanity: the rectangle must occupy a plausible area.
	w := math.Hypot(tr.x-tl.x, tr.y-tl.y)
	h := math.Hypot(bl.x-tl.x, bl.y-tl.y)
	if w < 8 || h < 8 || w > float64(img.W)*1.2 || h > float64(img.H)*1.2 {
		return corners, ErrNoEmblem
	}
	corners = [4]point{tl, tr, br, bl}
	return corners, nil
}

// fitLine least-squares fits edge = a·line + b with one outlier-rejection
// pass (dust in the quiet zone produces spurious early edges).
func fitLine(pts []point) (a, b float64, ok bool) {
	fit := func(ps []point) (float64, float64, bool) {
		n := float64(len(ps))
		if n < 4 {
			return 0, 0, false
		}
		var sx, sy, sxx, sxy float64
		for _, p := range ps {
			sx += p.x
			sy += p.y
			sxx += p.x * p.x
			sxy += p.x * p.y
		}
		den := n*sxx - sx*sx
		if math.Abs(den) < 1e-9 {
			return 0, 0, false
		}
		a := (n*sxy - sx*sy) / den
		return a, (sy - a*sx) / n, true
	}
	a, b, ok = fit(pts)
	if !ok {
		return
	}
	// Reject points deviating by more than max(2px, 3·MAD) and refit.
	resid := make([]float64, len(pts))
	for i, p := range pts {
		resid[i] = math.Abs(p.y - (a*p.x + b))
	}
	mad := median(resid)
	tol := math.Max(2, 3*mad)
	var kept []point
	for i, p := range pts {
		if resid[i] <= tol {
			kept = append(kept, p)
		}
	}
	if len(kept) >= 4 && len(kept) < len(pts) {
		if a2, b2, ok2 := fit(kept); ok2 {
			return a2, b2, true
		}
	}
	return a, b, true
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	for i := 1; i < len(s); i++ { // insertion sort; n is small
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// orient determines the emblem rotation by matching the four corner marks
// under each of the four possible rotations, returning the rotation index
// (multiples of 90° clockwise) and the grid→image mapper.
func orient(img *raster.Gray, thr byte, corners [4]point, l emblem.Layout) (int, func(u, v float64) point, error) {
	mapperFor := func(rot int) func(u, v float64) point {
		// corner order: detected [TL, TR, BR, BL] in image space; the
		// emblem's own TL sits at detected index rot.
		c := corners
		p00 := c[rot%4]
		p10 := c[(rot+1)%4]
		p11 := c[(rot+2)%4]
		p01 := c[(rot+3)%4]
		return func(u, v float64) point {
			x := (1-u)*(1-v)*p00.x + u*(1-v)*p10.x + (1-u)*v*p01.x + u*v*p11.x
			y := (1-u)*(1-v)*p00.y + u*(1-v)*p10.y + (1-u)*v*p01.y + u*v*p11.y
			return point{x, y}
		}
	}

	boxOrigins := [4][2]int{
		{0, 0},
		{l.DataW - emblem.CornerBox, 0},
		{l.DataW - emblem.CornerBox, l.DataH - emblem.CornerBox},
		{0, l.DataH - emblem.CornerBox},
	}

	bestRot, bestScore := -1, 1<<30
	for rot := 0; rot < 4; rot++ {
		m := mapperFor(rot)
		score := 0
		for c := 0; c < 4; c++ {
			pat := emblem.CornerPattern(c)
			for y := 0; y < emblem.CornerBox; y++ {
				for x := 0; x < emblem.CornerBox; x++ {
					v := sampleModule(img, m, boxOrigins[c][0]+x, boxOrigins[c][1]+y, l)
					got := v < float64(thr)
					if got != pat[y][x] {
						score++
					}
				}
			}
		}
		if score < bestScore {
			bestScore, bestRot = score, rot
		}
	}
	totalModules := 4 * emblem.CornerBox * emblem.CornerBox
	if bestScore > totalModules/4 {
		return 0, nil, fmt.Errorf("%w: corner marks unreadable (best score %d/%d)", ErrNoEmblem, bestScore, totalModules)
	}
	return bestRot, mapperFor(bestRot), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
