package mocoder

import (
	"microlonys/internal/emblem"
	"microlonys/raster"
)

// Rectify resamples a scanned frame into the axis-aligned,
// nominal-resolution image the archived MODecode program expects.
//
// This is the "image preprocessing" step the Bootstrap assigns to the
// future user (§3.3: "the user converts the images containing emblems
// into a linear flat array of pixel intensities ... Any standard image
// handling libraries can be used"): locate the emblem's black border,
// undo rotation/scale by resampling onto the nominal grid, and hand the
// flat pixel array to the emulated decoder. All decoding — threshold,
// demodulation, error correction — still happens inside the archived
// instruction stream; this routine only normalises geometry, which any
// era's image tooling can do.
func Rectify(img *raster.Gray, l emblem.Layout) (*raster.Gray, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	thr := img.OtsuThreshold()
	ds := &DecodeScratch{}
	corners, err := findFrame(ds, img, thr, l)
	if err != nil {
		return nil, err
	}
	_, mapper, err := orient(ds, img, thr, corners, l)
	if err != nil {
		return nil, err
	}

	px := float64(l.PxPerModule)
	q := float64(emblem.QuietModules)
	gw, gh := float64(l.GridW()), float64(l.GridH())
	out := raster.New(l.ImageW(), l.ImageH())
	// 3×3 supersampling approximates area integration over each output
	// pixel's footprint in the source — rectification usually downscales
	// (the scan is higher resolution than the nominal grid), and point
	// sampling there would alias module edges into the data field.
	const ss = 3
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			var sum float64
			n := 0
			for sy := 0; sy < ss; sy++ {
				v := ((float64(y)+(float64(sy)+0.5)/ss)/px - q) / gh
				for sx := 0; sx < ss; sx++ {
					u := ((float64(x)+(float64(sx)+0.5)/ss)/px - q) / gw
					if u < 0 || u > 1 || v < 0 || v > 1 {
						sum += 255 // quiet zone is white
					} else {
						p := mapper.mapUV(u, v)
						sum += img.SampleBilinear(p.x, p.y)
					}
					n++
				}
			}
			out.Pix[y*out.W+x] = clampToByte(sum / float64(n))
		}
	}
	return out, nil
}

func clampToByte(v float64) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
