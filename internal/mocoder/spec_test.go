package mocoder

import (
	"bytes"
	"math/rand"
	"testing"

	"microlonys/internal/emblem"
	"microlonys/internal/rs"
	"microlonys/raster"
)

func specLayout() emblem.Layout {
	return emblem.Layout{DataW: 120, DataH: 90, PxPerModule: 3}
}

func TestSpecConsistentWithCapacity(t *testing.T) {
	for _, l := range []emblem.Layout{
		specLayout(),
		{DataW: 64, DataH: 64, PxPerModule: 2},
		{DataW: 790, DataH: 1123, PxPerModule: 6}, // paper profile
		{DataW: 767, DataH: 1089, PxPerModule: 5}, // microfilm profile
		{DataW: 1014, DataH: 768, PxPerModule: 2}, // cinema profile
	} {
		s := Spec(l)
		if s.Capacity != Capacity(l) {
			t.Fatalf("%dx%d: spec capacity %d != Capacity %d", l.DataW, l.DataH, s.Capacity, Capacity(l))
		}
		if s.HeaderBytes != emblem.HeaderCopies*emblem.HeaderSize {
			t.Fatalf("header bytes %d", s.HeaderBytes)
		}
		sum := 0
		for _, n := range s.BlockDataLens {
			if n <= 0 || n > rs.InnerData {
				t.Fatalf("block data len %d out of range", n)
			}
			sum += n
		}
		if sum != s.Capacity {
			t.Fatalf("blocks sum %d != capacity %d", sum, s.Capacity)
		}
	}
}

func TestStreamPosBijective(t *testing.T) {
	s := Spec(specLayout())
	seen := map[int]bool{}
	total := 0
	for b, n := range s.BlockDataLens {
		cw := n + rs.InnerParity
		for j := 0; j < cw; j++ {
			pos := s.StreamPos(b, j)
			if pos < s.HeaderBytes {
				t.Fatalf("pos %d inside header block", pos)
			}
			if seen[pos] {
				t.Fatalf("stream position %d assigned twice", pos)
			}
			seen[pos] = true
			total++
		}
	}
	// Positions must tile a prefix of the coded region contiguously.
	for i := 0; i < total; i++ {
		if !seen[s.HeaderBytes+i] {
			t.Fatalf("stream position %d unassigned", s.HeaderBytes+i)
		}
	}
}

func TestStreamPosOutOfRange(t *testing.T) {
	s := Spec(specLayout())
	if got := s.StreamPos(0, s.BlockDataLens[0]+rs.InnerParity); got != -1 {
		t.Fatalf("out-of-range byteIdx gave %d", got)
	}
}

// TestStreamPosTargetsBlockByte proves StreamPos points at the byte it
// claims: corrupting exactly that stream byte must surface as a
// correction in that block alone.
func TestStreamPosTargetsBlockByte(t *testing.T) {
	l := specLayout()
	s := Spec(l)
	if len(s.BlockDataLens) < 2 {
		t.Skip("layout has a single block")
	}
	payload := make([]byte, s.Capacity)
	rand.New(rand.NewSource(1)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindRaw}

	img, err := EncodeDamaged(payload, hdr, l, func(stream []byte) {
		stream[s.StreamPos(1, 5)] ^= 0xFF
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _, st, err := Decode(img, l)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload not recovered")
	}
	if st.BytesCorrected != 1 {
		t.Fatalf("corrected %d bytes, want exactly 1", st.BytesCorrected)
	}
}

// TestInnerCodeThreshold pins the §3.1 claim exactly: RS(255,223)
// corrects 16 damaged bytes per block (16/223 ≈ 7.2 % of user data) and
// fails loudly at 17.
func TestInnerCodeThreshold(t *testing.T) {
	l := specLayout()
	s := Spec(l)
	payload := make([]byte, s.Capacity)
	rand.New(rand.NewSource(2)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindRaw}

	damageN := func(n int) (*Stats, []byte, error) {
		rng := rand.New(rand.NewSource(42))
		img, err := EncodeDamaged(payload, hdr, l, func(stream []byte) {
			for blk, dataLen := range s.BlockDataLens {
				k := n
				if k > dataLen {
					k = dataLen
				}
				for _, j := range rng.Perm(dataLen)[:k] {
					stream[s.StreamPos(blk, j)] ^= 0x5A
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		got, _, st, err := Decode(img, l)
		return st, got, err
	}

	st, got, err := damageN(rs.InnerParity / 2) // 16: at the bound
	if err != nil {
		t.Fatalf("16 errors/block must decode: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("16 errors/block: wrong payload")
	}
	if st.BytesCorrected < rs.InnerParity/2 {
		t.Fatalf("corrected %d, expected ≥16", st.BytesCorrected)
	}

	if _, _, err := damageN(rs.InnerParity/2 + 1); err == nil { // 17: beyond
		t.Fatal("17 errors/block decoded; must fail loudly")
	}
}

// TestJitterCrossover reproduces the E9 design argument as a unit test:
// at a jitter amplitude chosen from the benchmark sweep, the
// self-clocking emblem still decodes while the absolute-grid emblem
// (same geometry, no clock pairing) has already failed.
func TestJitterCrossover(t *testing.T) {
	l := emblem.Layout{DataW: 120, DataH: 90, PxPerModule: 2}
	payload := make([]byte, Capacity(l))
	rand.New(rand.NewSource(4)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindRaw}

	dm, err := Encode(payload, hdr, l)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := EncodeAbsolute(payload, hdr, l)
	if err != nil {
		t.Fatal(err)
	}

	// Sweep seeds at a fixed amplitude; count successes of both arms.
	// The jitter warp is implemented locally (a bounded random walk per
	// scan line, like media.Distortions) so this test stays independent
	// of the media package.
	const amplitude = 4.0
	dmOK, absOK := 0, 0
	const seeds = 12
	for seed := int64(1); seed <= seeds; seed++ {
		warp := rowJitterWarp(amplitude, seed)
		if got, _, _, err := Decode(warp(dm), l); err == nil && bytes.Equal(got, payload) {
			dmOK++
		}
		if got, _, _, err := DecodeAbsolute(warp(abs), l); err == nil && bytes.Equal(got, payload) {
			absOK++
		}
	}
	if dmOK <= absOK {
		t.Fatalf("self-clocking advantage not visible: dm %d/%d vs absolute %d/%d",
			dmOK, seeds, absOK, seeds)
	}
	if dmOK < seeds*2/3 {
		t.Fatalf("dm arm too fragile at %gpx: %d/%d", amplitude, dmOK, seeds)
	}
}

// rowJitterWarp returns a warp applying a bounded random-walk horizontal
// drift per scan line — the unsteady-transport model of §3.1.
func rowJitterWarp(amplitude float64, seed int64) func(*raster.Gray) *raster.Gray {
	return func(img *raster.Gray) *raster.Gray {
		rng := rand.New(rand.NewSource(seed))
		drift := make([]float64, img.H)
		cur := 0.0
		for y := range drift {
			cur += rng.NormFloat64() * amplitude / 18
			if cur > amplitude {
				cur = amplitude
			}
			if cur < -amplitude {
				cur = -amplitude
			}
			drift[y] = cur
		}
		return img.Warp(func(x, y float64) (float64, float64) {
			yi := int(y)
			if yi >= 0 && yi < len(drift) {
				return x + drift[yi], y
			}
			return x, y
		})
	}
}

// TestBurstSpreadByInterleave verifies the reason the inner codewords
// are byte-interleaved across the emblem: contiguous damage (a dust
// blob, a scratch) divides evenly among blocks instead of overwhelming
// one. With three blocks, a 48-byte burst is 16 errors per block —
// exactly correctable — while 54 contiguous bytes (18 per block) must
// fail loudly.
func TestBurstSpreadByInterleave(t *testing.T) {
	l := specLayout()
	s := Spec(l)
	if len(s.BlockDataLens) != 3 {
		t.Fatalf("layout has %d blocks; the arithmetic below assumes 3", len(s.BlockDataLens))
	}
	payload := make([]byte, s.Capacity)
	rand.New(rand.NewSource(6)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindRaw}

	burst := func(k int) ([]byte, error) {
		img, err := EncodeDamaged(payload, hdr, l, func(stream []byte) {
			for i := 0; i < k; i++ {
				stream[s.HeaderBytes+i] ^= 0x77
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		got, _, _, err := Decode(img, l)
		return got, err
	}

	got, err := burst(3 * rs.InnerParity / 2) // 48 bytes: 16 per block
	if err != nil {
		t.Fatalf("48-byte burst must decode: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("48-byte burst: wrong payload")
	}
	if _, err := burst(3*rs.InnerParity/2 + 6); err == nil { // 54 bytes: 18 per block
		t.Fatal("54-byte burst decoded; interleave cannot stretch that far")
	}
}
