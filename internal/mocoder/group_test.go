package mocoder

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func makeGroup(t *testing.T, nData, payloadLen int, seed int64) ([][]byte, [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([][]byte, nData)
	for i := range data {
		data[i] = make([]byte, payloadLen)
		rng.Read(data[i])
	}
	parity, err := GroupParityPayloads(data)
	if err != nil {
		t.Fatal(err)
	}
	return data, parity
}

func TestGroupParityShape(t *testing.T) {
	data, parity := makeGroup(t, GroupData, 500, 1)
	if len(parity) != GroupParity {
		t.Fatalf("%d parity payloads", len(parity))
	}
	for _, p := range parity {
		if len(p) != len(data[0]) {
			t.Fatalf("parity length %d", len(p))
		}
	}
}

func TestGroupRecoverAnyThreeOfTwenty(t *testing.T) {
	// §3.1: "full bit-for-bit restoration of data contained within a
	// series of 20 emblems in which any three are missing altogether."
	data, parity := makeGroup(t, GroupData, 300, 2)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		group := make([][]byte, 0, GroupTotal)
		for _, d := range data {
			group = append(group, append([]byte(nil), d...))
		}
		for _, p := range parity {
			group = append(group, append([]byte(nil), p...))
		}
		killed := rng.Perm(GroupTotal)[:3]
		for _, k := range killed {
			group[k] = nil
		}
		if err := RecoverGroup(group); err != nil {
			t.Fatalf("trial %d (killed %v): %v", trial, killed, err)
		}
		for i := 0; i < GroupData; i++ {
			if !bytes.Equal(group[i], data[i]) {
				t.Fatalf("trial %d: data emblem %d wrong after recovery", trial, i)
			}
		}
	}
}

func TestGroupRecoverZeroOneTwoMissing(t *testing.T) {
	data, parity := makeGroup(t, 5, 100, 4)
	for nMissing := 0; nMissing <= 3; nMissing++ {
		group := make([][]byte, 0)
		for _, d := range data {
			group = append(group, append([]byte(nil), d...))
		}
		for _, p := range parity {
			group = append(group, append([]byte(nil), p...))
		}
		for k := 0; k < nMissing; k++ {
			group[k] = nil
		}
		if err := RecoverGroup(group); err != nil {
			t.Fatalf("%d missing: %v", nMissing, err)
		}
		for i := range data {
			if !bytes.Equal(group[i], data[i]) {
				t.Fatalf("%d missing: emblem %d wrong", nMissing, i)
			}
		}
	}
}

func TestGroupFourMissingFails(t *testing.T) {
	data, parity := makeGroup(t, GroupData, 100, 5)
	group := make([][]byte, 0)
	for _, d := range data {
		group = append(group, append([]byte(nil), d...))
	}
	for _, p := range parity {
		group = append(group, append([]byte(nil), p...))
	}
	for k := 0; k < 4; k++ {
		group[k] = nil
	}
	if err := RecoverGroup(group); !errors.Is(err, ErrGroupUnrecoverable) {
		t.Fatalf("4 missing: %v", err)
	}
}

func TestGroupShortGroups(t *testing.T) {
	// Fewer than 17 data emblems form a shortened group (the paper's
	// microfilm experiment archived just 3 emblems).
	for _, nd := range []int{1, 2, 3, 7} {
		data, parity := makeGroup(t, nd, 64, int64(nd))
		group := make([][]byte, 0)
		for _, d := range data {
			group = append(group, append([]byte(nil), d...))
		}
		for _, p := range parity {
			group = append(group, append([]byte(nil), p...))
		}
		kill := nd / 2
		group[kill] = nil
		if err := RecoverGroup(group); err != nil {
			t.Fatalf("nd=%d: %v", nd, err)
		}
		if !bytes.Equal(group[kill], data[kill]) {
			t.Fatalf("nd=%d: recovery wrong", nd)
		}
	}
}

func TestGroupParityErrors(t *testing.T) {
	if _, err := GroupParityPayloads(nil); !errors.Is(err, ErrGroupSize) {
		t.Fatal("empty group accepted")
	}
	big := make([][]byte, GroupData+1)
	for i := range big {
		big[i] = []byte{1}
	}
	if _, err := GroupParityPayloads(big); !errors.Is(err, ErrGroupSize) {
		t.Fatal("oversized group accepted")
	}
	if _, err := GroupParityPayloads([][]byte{{}}); !errors.Is(err, ErrGroupSize) {
		t.Fatal("all-empty payloads accepted")
	}
}

func TestGroupRecoverErrors(t *testing.T) {
	if err := RecoverGroup([][]byte{{1}}); !errors.Is(err, ErrGroupSize) {
		t.Fatal("tiny group accepted")
	}
	// Length mismatch.
	group := [][]byte{{1, 2}, {1}, {1, 2}, {1, 2}}
	if err := RecoverGroup(group); !errors.Is(err, ErrGroupSize) {
		t.Fatal("mismatched lengths accepted")
	}
	// All missing.
	group2 := [][]byte{nil, nil, nil, nil}
	if err := RecoverGroup(group2); err == nil {
		t.Fatal("all-missing group accepted")
	}
}

func TestGroupUnevenPayloadsPadded(t *testing.T) {
	data := [][]byte{
		[]byte("short"),
		[]byte("a considerably longer payload"),
	}
	parity, err := GroupParityPayloads(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parity {
		if len(p) != len(data[1]) {
			t.Fatalf("parity len %d", len(p))
		}
	}
}
