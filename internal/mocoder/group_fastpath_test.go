package mocoder

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"microlonys/internal/rs"
)

// recoverGroupRef is the pre-fast-path RecoverGroup formulation, kept
// verbatim: one full errors-and-erasures rs Decode per payload byte
// column. The once-per-group erasure solve must produce byte-identical
// payloads and the same error behaviour.
func recoverGroupRef(payloads [][]byte) error {
	n := len(payloads)
	nd := n - GroupParity
	if n < GroupParity+1 || nd > GroupData {
		return fmt.Errorf("%w: group of %d", ErrGroupSize, n)
	}
	var missing []int
	length := -1
	for i, p := range payloads {
		if p == nil {
			missing = append(missing, i)
			continue
		}
		if length == -1 {
			length = len(p)
		} else if len(p) != length {
			return fmt.Errorf("%w: payload length mismatch (%d vs %d)", ErrGroupSize, len(p), length)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(missing) > GroupParity {
		return fmt.Errorf("%w: %d missing, parity covers %d", ErrGroupUnrecoverable, len(missing), GroupParity)
	}
	if length <= 0 {
		return fmt.Errorf("%w: no intact payloads", ErrGroupUnrecoverable)
	}
	for _, i := range missing {
		payloads[i] = make([]byte, length)
	}
	cw := make([]byte, n)
	for j := 0; j < length; j++ {
		for i, p := range payloads {
			cw[i] = p[j]
		}
		if _, err := outer.Decode(cw, missing); err != nil {
			return fmt.Errorf("recovering column %d: %w", j, err)
		}
		for _, i := range missing {
			payloads[i][j] = cw[i]
		}
	}
	return nil
}

// cloneGroup deep-copies a group, preserving nils.
func cloneGroup(g [][]byte) [][]byte {
	out := make([][]byte, len(g))
	for i, p := range g {
		if p != nil {
			out[i] = append([]byte(nil), p...)
		}
	}
	return out
}

// TestRecoverGroupFastSolve pins the once-per-group erasure solve to the
// per-column reference across group shapes (full and shortened), missing
// counts 0..3 over data and parity positions, and payload lengths down to
// a single byte.
func TestRecoverGroupFastSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, nData := range []int{1, 2, 5, GroupData} {
		for _, length := range []int{1, 7, 300} {
			data := make([][]byte, nData)
			for i := range data {
				data[i] = make([]byte, length)
				rng.Read(data[i])
			}
			parity, err := GroupParityPayloads(data)
			if err != nil {
				t.Fatal(err)
			}
			group := append(append([][]byte(nil), data...), parity...)
			size := len(group)

			for trial := 0; trial < 40; trial++ {
				k := rng.Intn(GroupParity + 1) // 0..3 missing
				killed := rng.Perm(size)[:k]
				broken := cloneGroup(group)
				for _, i := range killed {
					broken[i] = nil
				}
				got := cloneGroup(broken)
				want := cloneGroup(broken)
				gotErr := RecoverGroup(got)
				wantErr := recoverGroupRef(want)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("nData=%d len=%d killed=%v: fast err %v, reference err %v",
						nData, length, killed, gotErr, wantErr)
				}
				if gotErr != nil {
					continue
				}
				for i := range got {
					if !bytes.Equal(got[i], want[i]) {
						t.Fatalf("nData=%d len=%d killed=%v: payload %d differs from reference",
							nData, length, killed, i)
					}
					if !bytes.Equal(got[i], group[i]) {
						t.Fatalf("nData=%d len=%d killed=%v: payload %d not bit-exact",
							nData, length, killed, i)
					}
				}
			}
		}
	}
}

// TestRecoverGroupCorruptedPresentPayload pins the fall-back path: when a
// *present* payload byte is wrong (an inner-code miscorrection slipping a
// bad frame payload into the group), the erasure solve's clean-column
// verification must detect it and defer to the reference per-column
// decode — correcting within capacity, rejecting beyond it, and matching
// the reference byte for byte either way. With parity-many emblems
// missing there is no spare capacity and both formulations are equally
// blind, so they must still agree exactly.
func TestRecoverGroupCorruptedPresentPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, nData := range []int{2, 5, GroupData} {
		length := 64
		data := make([][]byte, nData)
		for i := range data {
			data[i] = make([]byte, length)
			rng.Read(data[i])
		}
		parity, err := GroupParityPayloads(data)
		if err != nil {
			t.Fatal(err)
		}
		group := append(append([][]byte(nil), data...), parity...)
		size := len(group)

		for missingCount := 1; missingCount <= GroupParity; missingCount++ {
			for nErr := 1; nErr <= 2; nErr++ {
				for trial := 0; trial < 20; trial++ {
					perm := rng.Perm(size)
					killed := perm[:missingCount]
					broken := cloneGroup(group)
					for _, i := range killed {
						broken[i] = nil
					}
					// Corrupt nErr bytes spread over surviving payloads.
					for e := 0; e < nErr; e++ {
						p := perm[missingCount+e] // distinct, surviving
						broken[p][rng.Intn(length)] ^= byte(1 + rng.Intn(255))
					}
					got := cloneGroup(broken)
					want := cloneGroup(broken)
					gotErr := RecoverGroup(got)
					wantErr := recoverGroupRef(want)
					if (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("nData=%d missing=%d errs=%d trial=%d: fast err %v, reference err %v",
							nData, missingCount, nErr, trial, gotErr, wantErr)
					}
					if gotErr != nil {
						if gotErr.Error() != wantErr.Error() {
							t.Fatalf("nData=%d missing=%d errs=%d trial=%d: fast err %q, reference %q",
								nData, missingCount, nErr, trial, gotErr, wantErr)
						}
						continue
					}
					for i := range got {
						if !bytes.Equal(got[i], want[i]) {
							t.Fatalf("nData=%d missing=%d errs=%d trial=%d: payload %d differs from reference",
								nData, missingCount, nErr, trial, i)
						}
					}
				}
			}
		}
	}
}

// TestRecoverGroupFastSolveErrors pins the validation paths: bad shapes,
// too many missing, mismatched lengths — same errors as the reference.
func TestRecoverGroupFastSolveErrors(t *testing.T) {
	cases := [][][]byte{
		{{1}, {2}},                               // too small a group
		{nil, nil, nil, nil, {5}},                // 4 missing > parity
		{{1, 2}, {3}, nil, {4, 5}, {6, 7}},       // length mismatch
		{nil, nil, nil, make([]byte, 0), {0, 0}}, // mismatch with empty
	}
	for ci, g := range cases {
		gotErr := RecoverGroup(cloneGroup(g))
		wantErr := recoverGroupRef(cloneGroup(g))
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("case %d: fast err %v, reference err %v", ci, gotErr, wantErr)
		}
		if gotErr != nil && wantErr != nil && gotErr.Error() != wantErr.Error() {
			// The solve reports unrecoverable shapes before touching
			// columns, so only the wrapping may differ — the sentinel must
			// not.
			t.Logf("case %d: fast %q vs reference %q", ci, gotErr, wantErr)
		}
	}
	// All payloads nil but within parity budget: no intact payloads.
	g := [][]byte{nil, nil, nil, nil}
	if err := RecoverGroup(g); err == nil {
		t.Fatal("group with no intact payloads accepted")
	}
}

func BenchmarkRecoverGroup(b *testing.B) {
	rng := rand.New(rand.NewSource(72))
	length := 4096
	data := make([][]byte, GroupData)
	for i := range data {
		data[i] = make([]byte, length)
		rng.Read(data[i])
	}
	parity, err := GroupParityPayloads(data)
	if err != nil {
		b.Fatal(err)
	}
	group := append(append([][]byte(nil), data...), parity...)
	b.SetBytes(int64(GroupData * length))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		broken := cloneGroup(group)
		broken[0], broken[9], broken[rs.OuterTotal-1] = nil, nil, nil
		b.StartTimer()
		if err := RecoverGroup(broken); err != nil {
			b.Fatal(err)
		}
	}
}
