package mocoder

import (
	"microlonys/internal/emblem"
	"microlonys/internal/rs"
)

// LayoutSpec describes how one emblem layout is filled: the stream
// budget, header block size and the inner-code block structure. The
// experiment harness uses it to aim failure injection at exact codeword
// positions; capacity reporting uses it for density arithmetic.
type LayoutSpec struct {
	StreamBits    int   // modulated bits along the data path
	HeaderBytes   int   // replicated header block at the stream start
	CodedBytes    int   // bytes available to the inner-code stream
	BlockDataLens []int // data bytes per inner RS block
	Capacity      int   // payload bytes (sum of BlockDataLens)
}

// Spec computes the layout's fill plan.
func Spec(l emblem.Layout) LayoutSpec {
	s := LayoutSpec{
		StreamBits:    l.StreamBits(),
		HeaderBytes:   emblem.HeaderCopies * emblem.HeaderSize,
		CodedBytes:    codedBytes(l),
		BlockDataLens: blockLens(codedBytes(l)),
	}
	for _, n := range s.BlockDataLens {
		s.Capacity += n
	}
	return s
}

// StreamPos returns the stream byte offset (including the header block)
// of codeword byte byteIdx of inner-code block b under the round-robin
// interleave. byteIdx counts within the codeword: 0..dataLen+parity-1.
func (s LayoutSpec) StreamPos(b, byteIdx int) int {
	cw := make([]int, len(s.BlockDataLens))
	for i, n := range s.BlockDataLens {
		cw[i] = n + rs.InnerParity
	}
	// Round r of the interleave emits one byte from every block still
	// longer than r, in block order.
	pos := 0
	for r := 0; r <= byteIdx; r++ {
		for i, n := range cw {
			if r >= n {
				continue
			}
			if i == b && r == byteIdx {
				return s.HeaderBytes + pos
			}
			pos++
		}
	}
	return -1
}
