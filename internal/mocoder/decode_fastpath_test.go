package mocoder

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"microlonys/internal/emblem"
	"microlonys/internal/rs"
	"microlonys/raster"
)

// This file pins the restructured scan-path decoder — concrete bilinear
// mapper, per-frame DecodeScratch, cached path/clock pairs, scratch-based
// findFrame/fitLine and the rs DecodeWith inner loop — to the
// pre-fast-path formulation, kept verbatim below: closure mapper, fresh
// allocations everywhere, per-call DataPath. Every decoded byte, header
// field, Stats field and error must match.

// decodeFullRef is the old package-level Decode, verbatim.
func decodeFullRef(img *raster.Gray, l emblem.Layout) ([]byte, emblem.Header, *Stats, error) {
	if err := l.Validate(); err != nil {
		return nil, emblem.Header{}, nil, err
	}
	st := &Stats{}
	st.Threshold = img.OtsuThreshold()

	corners, err := findFrameRef(img, st.Threshold, l)
	if err != nil {
		return nil, emblem.Header{}, st, err
	}

	rot, mapper, err := orientRef(img, st.Threshold, corners, l)
	if err != nil {
		return nil, emblem.Header{}, st, err
	}
	st.Rotation = rot * 90

	offs := clockOffsetsRef(img, mapper, l)

	path := l.DataPath()
	nbits := l.StreamBits()
	levels := make([]bool, 2*nbits)
	for i := 0; i < 2*nbits; i++ {
		p := path[i]
		levels[i] = sampleModuleOffRef(img, mapper, p.X, p.Y, l, offs[p.Y]) < float64(st.Threshold)
	}

	stream := make([]byte, (nbits+7)/8)
	suspect := make([]bool, len(stream))
	prev := false
	for i := 0; i < nbits; i++ {
		h1, h2 := levels[2*i], levels[2*i+1]
		if h1 == prev {
			st.ClockViolations++
			suspect[i/8] = true
		}
		if h1 != h2 {
			stream[i/8] |= 1 << uint(7-i%8)
		}
		prev = h2
	}

	hdr, err := emblem.RecoverHeader(stream)
	if err != nil {
		return nil, emblem.Header{}, st, err
	}

	hb := emblem.HeaderCopies * emblem.HeaderSize
	cb := codedBytes(l)
	coded := stream[hb:]
	codedSuspect := suspect[hb:]
	if len(coded) > cb {
		coded = coded[:cb]
	}
	lens := blockLens(cb)
	blocks, erasures := deinterleave(coded, codedSuspect, lens)

	payload := make([]byte, 0, Capacity(l))
	for i, cw := range blocks {
		eras := erasures[i]
		if len(eras) > rs.InnerParity {
			eras = nil
		}
		n, err := inner.Decode(cw, eras)
		if err != nil && len(eras) > 0 {
			n, err = inner.Decode(cw, nil)
		}
		if err != nil {
			return nil, hdr, st, errBlockRef(i, len(blocks), err)
		}
		st.BytesCorrected += n
		st.BlocksDecoded++
		payload = append(payload, cw[:lens[i]]...)
	}

	if int(hdr.PayloadLen) > len(payload) {
		return nil, hdr, st, errHeaderClaimRef(hdr, len(payload))
	}
	return payload[:hdr.PayloadLen], hdr, st, nil
}

// The reference's error constructors mirror the production fmt strings so
// messages compare equal.
func errBlockRef(i, n int, err error) error {
	return fmt.Errorf("%w: block %d/%d: %v", ErrUncorrectable, i+1, n, err)
}

func errHeaderClaimRef(hdr emblem.Header, capacity int) error {
	return fmt.Errorf("%w: header claims %d payload bytes, capacity %d", emblem.ErrHeader, hdr.PayloadLen, capacity)
}

func sampleModuleRef(img *raster.Gray, mapper func(u, v float64) point, mx, my int, l emblem.Layout) float64 {
	return sampleModuleOffRef(img, mapper, mx, my, l, 0)
}

func sampleModuleOffRef(img *raster.Gray, mapper func(u, v float64) point, mx, my int, l emblem.Layout, off float64) float64 {
	bm := float64(emblem.BorderModules + emblem.SeparatorModules)
	gw, gh := float64(l.GridW()), float64(l.GridH())
	var sum float64
	offs := [5][2]float64{{0, 0}, {-0.22, -0.22}, {0.22, -0.22}, {-0.22, 0.22}, {0.22, 0.22}}
	for _, o := range offs {
		u := (bm + float64(mx) + 0.5 + o[0]) / gw
		v := (bm + float64(my) + 0.5 + o[1]) / gh
		p := mapper(u, v)
		sum += img.SampleBilinear(p.x+off, p.y)
	}
	return sum / float64(len(offs))
}

func clockOffsetsRef(img *raster.Gray, mapper func(u, v float64) point, l emblem.Layout) []float64 {
	type pair struct{ a, b emblem.Point }
	path := l.DataPath()
	pairsByRow := make([][]pair, l.DataH)
	for i := 1; i+1 < len(path); i += 2 {
		a, b := path[i], path[i+1]
		if a.Y == b.Y {
			pairsByRow[a.Y] = append(pairsByRow[a.Y], pair{a, b})
		}
	}

	bm := float64(emblem.BorderModules + emblem.SeparatorModules)
	gw := float64(l.GridW())
	p0 := mapper(bm/gw, 0.5)
	p1 := mapper((bm+1)/gw, 0.5)
	pxPerModule := math.Hypot(p1.x-p0.x, p1.y-p0.y)
	if pxPerModule <= 0 {
		pxPerModule = float64(l.PxPerModule)
	}
	maxStep := 0.45 * pxPerModule

	sampleAt := func(p emblem.Point, off float64) float64 {
		u := (bm + float64(p.X) + 0.5) / gw
		v := (bm + float64(p.Y) + 0.5) / float64(l.GridH())
		q := mapper(u, v)
		return img.SampleBilinear(q.x+off, q.y)
	}
	contrast := func(pairs []pair, off float64) float64 {
		stride := 1 + len(pairs)/48
		var s float64
		for i := 0; i < len(pairs); i += stride {
			pr := pairs[i]
			s += math.Abs(sampleAt(pr.a, off) - sampleAt(pr.b, off))
		}
		return s
	}

	offs := make([]float64, l.DataH)
	prev := 0.0
	for y := 0; y < l.DataH; y++ {
		pairs := pairsByRow[y]
		if len(pairs) < 2 {
			offs[y] = prev
			continue
		}
		best, bestScore := prev, contrast(pairs, prev)
		step := maxStep / 3
		for d := -maxStep; d <= maxStep; d += step {
			if s := contrast(pairs, prev+d); s > bestScore {
				best, bestScore = prev+d, s
			}
		}
		for _, d := range []float64{-step / 2, -step / 4, step / 4, step / 2} {
			if s := contrast(pairs, best+d); s > bestScore {
				best, bestScore = best+d, s
			}
		}
		offs[y] = best
		prev = best
	}
	return offs
}

func findFrameRef(img *raster.Gray, thr byte, l emblem.Layout) ([4]point, error) {
	var corners [4]point

	approxPxX := float64(img.W) / float64(l.FullModulesW())
	approxPxY := float64(img.H) / float64(l.FullModulesH())
	runX := maxInt(2, int(approxPxX*float64(emblem.BorderModules)/2))
	runY := maxInt(2, int(approxPxY*float64(emblem.BorderModules)/2))

	scan := func(n int, intensity func(i, j int) byte, limit int, run int) []point {
		var pts []point
		lo, hi := n*15/100, n*85/100
		step := maxInt(1, (hi-lo)/160)
		for i := lo; i < hi; i += step {
			streak := 0
			for j := 0; j < limit; j++ {
				if intensity(i, j) < thr {
					streak++
					if streak >= run {
						j0 := j - streak + 1
						edge := float64(j0) - 0.5
						if j0 > 0 {
							a := float64(intensity(i, j0-1))
							b := float64(intensity(i, j0))
							if a > b {
								edge = float64(j0) - 1 + (a-float64(thr))/(a-b)
							}
						}
						pts = append(pts, point{float64(i), edge})
						break
					}
				} else {
					streak = 0
				}
			}
		}
		return pts
	}

	left := scan(img.H, func(y, x int) byte { return img.At(x, y) }, img.W/2, runX)
	right := scan(img.H, func(y, x int) byte { return img.At(img.W-1-x, y) }, img.W/2, runX)
	top := scan(img.W, func(x, y int) byte { return img.At(x, y) }, img.H/2, runY)
	bottom := scan(img.W, func(x, y int) byte { return img.At(x, img.H-1-y) }, img.H/2, runY)

	minPts := 8
	if len(left) < minPts || len(right) < minPts || len(top) < minPts || len(bottom) < minPts {
		return corners, ErrNoEmblem
	}

	la, lb, ok1 := fitLineRef(left)
	ra, rbI, ok2 := fitLineRef(right)
	ta, tb, ok3 := fitLineRef(top)
	ba, bb, ok4 := fitLineRef(bottom)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return corners, ErrNoEmblem
	}
	rb := float64(img.W-1) - rbI
	ra = -ra
	bbAbs := float64(img.H-1) - bb
	baAbs := -ba

	intersect := func(ea, eb, fa, fb float64) (point, bool) {
		den := 1 - ea*fa
		if math.Abs(den) < 1e-9 {
			return point{}, false
		}
		x := (ea*fb + eb) / den
		y := fa*x + fb
		return point{x, y}, true
	}
	tl, k1 := intersect(la, lb, ta, tb)
	tr, k2 := intersect(ra, rb, ta, tb)
	br, k3 := intersect(ra, rb, baAbs, bbAbs)
	bl, k4 := intersect(la, lb, baAbs, bbAbs)
	if !k1 || !k2 || !k3 || !k4 {
		return corners, ErrNoEmblem
	}

	w := math.Hypot(tr.x-tl.x, tr.y-tl.y)
	h := math.Hypot(bl.x-tl.x, bl.y-tl.y)
	if w < 8 || h < 8 || w > float64(img.W)*1.2 || h > float64(img.H)*1.2 {
		return corners, ErrNoEmblem
	}
	corners = [4]point{tl, tr, br, bl}
	return corners, nil
}

func fitLineRef(pts []point) (a, b float64, ok bool) {
	fit := func(ps []point) (float64, float64, bool) {
		n := float64(len(ps))
		if n < 4 {
			return 0, 0, false
		}
		var sx, sy, sxx, sxy float64
		for _, p := range ps {
			sx += p.x
			sy += p.y
			sxx += p.x * p.x
			sxy += p.x * p.y
		}
		den := n*sxx - sx*sx
		if math.Abs(den) < 1e-9 {
			return 0, 0, false
		}
		a := (n*sxy - sx*sy) / den
		return a, (sy - a*sx) / n, true
	}
	a, b, ok = fit(pts)
	if !ok {
		return
	}
	resid := make([]float64, len(pts))
	for i, p := range pts {
		resid[i] = math.Abs(p.y - (a*p.x + b))
	}
	mad := medianRef(resid)
	tol := math.Max(2, 3*mad)
	var kept []point
	for i, p := range pts {
		if resid[i] <= tol {
			kept = append(kept, p)
		}
	}
	if len(kept) >= 4 && len(kept) < len(pts) {
		if a2, b2, ok2 := fit(kept); ok2 {
			return a2, b2, true
		}
	}
	return a, b, true
}

func medianRef(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func orientRef(img *raster.Gray, thr byte, corners [4]point, l emblem.Layout) (int, func(u, v float64) point, error) {
	mapperForRef := func(rot int) func(u, v float64) point {
		c := corners
		p00 := c[rot%4]
		p10 := c[(rot+1)%4]
		p11 := c[(rot+2)%4]
		p01 := c[(rot+3)%4]
		return func(u, v float64) point {
			x := (1-u)*(1-v)*p00.x + u*(1-v)*p10.x + (1-u)*v*p01.x + u*v*p11.x
			y := (1-u)*(1-v)*p00.y + u*(1-v)*p10.y + (1-u)*v*p01.y + u*v*p11.y
			return point{x, y}
		}
	}

	boxOrigins := [4][2]int{
		{0, 0},
		{l.DataW - emblem.CornerBox, 0},
		{l.DataW - emblem.CornerBox, l.DataH - emblem.CornerBox},
		{0, l.DataH - emblem.CornerBox},
	}

	bestRot, bestScore := -1, 1<<30
	for rot := 0; rot < 4; rot++ {
		m := mapperForRef(rot)
		score := 0
		for c := 0; c < 4; c++ {
			pat := emblem.CornerPattern(c)
			for y := 0; y < emblem.CornerBox; y++ {
				for x := 0; x < emblem.CornerBox; x++ {
					v := sampleModuleRef(img, m, boxOrigins[c][0]+x, boxOrigins[c][1]+y, l)
					got := v < float64(thr)
					if got != pat[y][x] {
						score++
					}
				}
			}
		}
		if score < bestScore {
			bestScore, bestRot = score, rot
		}
	}
	totalModules := 4 * emblem.CornerBox * emblem.CornerBox
	if bestScore > totalModules/4 {
		return 0, nil, fmt.Errorf("%w: corner marks unreadable (best score %d/%d)", ErrNoEmblem, bestScore, totalModules)
	}
	return bestRot, mapperForRef(bestRot), nil
}

// ---- the differential itself -----------------------------------------

// checkDecodeFrame decodes img through the shared scratch and through the
// reference and compares payload, header, stats and error.
func checkDecodeFrame(t *testing.T, s *DecodeScratch, img *raster.Gray, l emblem.Layout, label string) {
	t.Helper()
	gotP, gotH, gotSt, gotErr := DecodeWith(s, img, l)
	wantP, wantH, wantSt, wantErr := decodeFullRef(img, l)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: fast err %v, reference err %v", label, gotErr, wantErr)
	}
	if gotErr != nil && gotErr.Error() != wantErr.Error() {
		t.Fatalf("%s: fast err %q, reference err %q", label, gotErr, wantErr)
	}
	if gotH != wantH {
		t.Fatalf("%s: header %+v, reference %+v", label, gotH, wantH)
	}
	if (gotSt == nil) != (wantSt == nil) {
		t.Fatalf("%s: stats nilness differs", label)
	}
	if gotSt != nil && *gotSt != *wantSt {
		t.Fatalf("%s: stats %+v, reference %+v", label, *gotSt, *wantSt)
	}
	if !bytes.Equal(gotP, wantP) {
		t.Fatalf("%s: payload differs from reference (%d vs %d bytes)", label, len(gotP), len(wantP))
	}
}

// jitterImage applies a deterministic synthetic scan distortion (sub-pixel
// warp + noise) without importing media (which would cycle): enough to
// drive the clock-offset tracker and the inner code off the clean path.
func jitterImage(img *raster.Gray, seed int64, jitterPx, noise float64) *raster.Gray {
	rng := rand.New(rand.NewSource(seed))
	shifts := make([]float64, img.H)
	cur := 0.0
	for y := range shifts {
		cur += rng.NormFloat64() * jitterPx / 18
		if cur > jitterPx {
			cur = jitterPx
		}
		if cur < -jitterPx {
			cur = -jitterPx
		}
		shifts[y] = cur
	}
	out := img.Warp(func(x, y float64) (float64, float64) {
		yi := int(y)
		if yi >= 0 && yi < len(shifts) {
			x += shifts[yi]
		}
		return x, y
	})
	if noise > 0 {
		for i := range out.Pix {
			v := float64(out.Pix[i]) + rng.NormFloat64()*noise
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			out.Pix[i] = byte(v)
		}
	}
	return out
}

// TestDecodeWithDifferential pins DecodeWith to the reference decoder on
// clean, rotated, stream-damaged and scan-distorted frames across the
// fast-path layouts — one scratch reused throughout, so state from any
// frame leaking into the next would be caught.
func TestDecodeWithDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	var s DecodeScratch
	for li, l := range fastLayouts {
		payload := make([]byte, Capacity(l))
		rng.Read(payload)
		hdr := emblem.Header{Kind: emblem.KindData, Index: uint16(li), GroupID: 9, GroupData: 17, GroupParity: 3}
		img, err := Encode(payload, hdr, l)
		if err != nil {
			t.Fatal(err)
		}

		checkDecodeFrame(t, &s, img, l, "clean")
		for rot := 1; rot < 4; rot++ {
			checkDecodeFrame(t, &s, img.Rotate90(rot), l, "rotated")
		}
		checkDecodeFrame(t, &s, jitterImage(img, int64(li)+1, 0.8, 3), l, "jitter+noise")
		checkDecodeFrame(t, &s, img.Resize(img.W*3/2, img.H*3/2), l, "rescaled")

		// Inner-code errors within and beyond capacity.
		for _, frac := range []float64{0.03, 0.07, 0.12} {
			spec := Spec(l)
			dmg, err := EncodeDamaged(payload, hdr, l, func(stream []byte) {
				r := rand.New(rand.NewSource(int64(li)*31 + int64(frac*100)))
				for blk, dataLen := range spec.BlockDataLens {
					nErr := int(frac * float64(dataLen))
					for _, j := range r.Perm(dataLen)[:nErr] {
						stream[spec.StreamPos(blk, j)] ^= 0xA5
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			checkDecodeFrame(t, &s, dmg, l, "damaged")
		}

		// No emblem at all.
		checkDecodeFrame(t, &s, raster.New(l.ImageW(), l.ImageH()), l, "blank")
	}
}

// TestDecodeWithReuseAcrossLayouts re-decodes alternating layouts through
// one scratch and compares against fresh Decode calls: cached geometry
// must track the layout.
func TestDecodeWithReuseAcrossLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	var s DecodeScratch
	for trial := 0; trial < 12; trial++ {
		l := fastLayouts[trial%len(fastLayouts)]
		payload := make([]byte, 1+rng.Intn(Capacity(l)))
		rng.Read(payload)
		hdr := emblem.Header{Kind: emblem.KindRaw, Index: uint16(trial)}
		img, err := Encode(payload, hdr, l)
		if err != nil {
			t.Fatal(err)
		}
		gotP, gotH, _, err := DecodeWith(&s, img, l)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantP, wantH, _, err := Decode(img, l)
		if err != nil {
			t.Fatalf("trial %d fresh: %v", trial, err)
		}
		if !bytes.Equal(gotP, wantP) || gotH != wantH {
			t.Fatalf("trial %d: reused scratch differs from fresh decode", trial)
		}
	}
}

// TestDeinterleaveIntoMatches pins the scratch deinterleave to the
// allocating one, including short streams (trailing erasures).
func TestDeinterleaveIntoMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	var s DecodeScratch
	for trial := 0; trial < 40; trial++ {
		lens := make([]int, 1+rng.Intn(4))
		total := 0
		for i := range lens {
			lens[i] = 1 + rng.Intn(rs.InnerData)
			total += lens[i] + rs.InnerParity
		}
		streamLen := total
		if rng.Intn(3) == 0 {
			streamLen = rng.Intn(total + 1) // truncated stream
		}
		stream := make([]byte, streamLen)
		rng.Read(stream)
		suspect := make([]bool, streamLen)
		for i := range suspect {
			suspect[i] = rng.Intn(10) == 0
		}

		wantB, wantE := deinterleave(stream, suspect, lens)
		s.lens = append(s.lens[:0], lens...)
		gotB, gotE := deinterleaveInto(&s, stream, suspect)

		if len(gotB) != len(wantB) || len(gotE) != len(wantE) {
			t.Fatalf("trial %d: shape mismatch", trial)
		}
		for i := range wantB {
			if !bytes.Equal(gotB[i], wantB[i]) {
				t.Fatalf("trial %d: block %d differs", trial, i)
			}
			if len(gotE[i]) != len(wantE[i]) {
				t.Fatalf("trial %d: erasures %d: %v vs %v", trial, i, gotE[i], wantE[i])
			}
			for j := range wantE[i] {
				if gotE[i][j] != wantE[i][j] {
					t.Fatalf("trial %d: erasures %d: %v vs %v", trial, i, gotE[i], wantE[i])
				}
			}
		}
	}
}

// TestDecodeWithAllocs checks the steady-state claim: with the layout
// fixed, a frame decode through a reused scratch allocates only the
// returned payload and Stats.
func TestDecodeWithAllocs(t *testing.T) {
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 3}
	payload := make([]byte, Capacity(l))
	rand.New(rand.NewSource(84)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindRaw}
	img, err := Encode(payload, hdr, l)
	if err != nil {
		t.Fatal(err)
	}
	var s DecodeScratch
	if _, _, _, err := DecodeWith(&s, img, l); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, _, err := DecodeWith(&s, img, l); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("steady-state DecodeWith allocates %.0f objects, want ≤ 2 (payload + stats)", allocs)
	}
}

func BenchmarkDecodeFrame(b *testing.B) {
	l := emblem.Layout{DataW: 120, DataH: 90, PxPerModule: 3}
	payload := make([]byte, Capacity(l))
	rand.New(rand.NewSource(85)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindRaw}
	img, err := Encode(payload, hdr, l)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := Decode(img, l); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		b.ReportAllocs()
		var s DecodeScratch
		if _, _, _, err := DecodeWith(&s, img, l); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := DecodeWith(&s, img, l); err != nil {
				b.Fatal(err)
			}
		}
	})
}
