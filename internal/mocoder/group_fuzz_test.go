package mocoder

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// FuzzRecoverGroup pins the outer-code group-recovery contract under
// randomized loss and corruption:
//
//   - up to GroupParity missing emblems and no corruption → exact,
//     bit-for-bit recovery of the original group;
//   - more than GroupParity missing → an error, never fabricated data;
//   - any successful recovery of a damaged group yields valid outer-code
//     codeword columns — silent garbage is never handed back.
func FuzzRecoverGroup(f *testing.F) {
	f.Add(int64(1), uint8(17), uint8(32), uint32(0b111), uint8(0))   // full group, 3 lost
	f.Add(int64(2), uint8(17), uint8(32), uint32(0b1111), uint8(0))  // 4 lost: beyond parity
	f.Add(int64(3), uint8(5), uint8(8), uint32(0b1), uint8(0))       // short group, 1 lost
	f.Add(int64(4), uint8(17), uint8(16), uint32(0b10), uint8(3))    // spare parity + corruption
	f.Add(int64(5), uint8(17), uint8(16), uint32(0b111), uint8(2))   // no spare parity + corruption
	f.Add(int64(6), uint8(1), uint8(1), uint32(0), uint8(0))         // minimal group, nothing lost
	f.Add(int64(7), uint8(9), uint8(64), uint32(0b10101), uint8(0))  // scattered loss
	f.Add(int64(8), uint8(17), uint8(32), uint32(0xFFFFF), uint8(0)) // everything lost

	f.Fuzz(func(t *testing.T, seed int64, ndRaw, lenRaw uint8, missMask uint32, ncorrRaw uint8) {
		nd := int(ndRaw)%GroupData + 1
		length := int(lenRaw)%64 + 1
		rng := rand.New(rand.NewSource(seed))

		data := make([][]byte, nd)
		for i := range data {
			data[i] = make([]byte, length)
			rng.Read(data[i])
		}
		parity, err := GroupParityPayloads(data)
		if err != nil {
			t.Fatalf("GroupParityPayloads: %v", err)
		}

		orig := make([][]byte, 0, nd+GroupParity)
		for _, p := range append(append([][]byte{}, data...), parity...) {
			orig = append(orig, append([]byte(nil), p...))
		}
		n := len(orig)

		group := make([][]byte, n)
		nmiss := 0
		for i := range orig {
			if missMask&(1<<i) != 0 {
				nmiss++
				continue // leave nil
			}
			group[i] = append([]byte(nil), orig[i]...)
		}

		// Corrupt up to 7 bytes across the present payloads.
		ncorr := 0
		for c := 0; c < int(ncorrRaw)%8; c++ {
			i := rng.Intn(n)
			if group[i] == nil {
				continue
			}
			j := rng.Intn(length)
			old := group[i][j]
			group[i][j] ^= byte(rng.Intn(255) + 1)
			if group[i][j] != old {
				ncorr++
			}
		}

		err = RecoverGroup(group)

		switch {
		case nmiss > GroupParity:
			if err == nil {
				t.Fatalf("%d missing of %d recovered without error (parity %d)", nmiss, n, GroupParity)
			}
			if !errors.Is(err, ErrGroupUnrecoverable) {
				t.Fatalf("%d missing: error = %v, want ErrGroupUnrecoverable", nmiss, err)
			}
			return
		case ncorr == 0:
			if err != nil {
				t.Fatalf("%d missing, clean group: %v", nmiss, err)
			}
			for i := range orig {
				if !bytes.Equal(group[i], orig[i]) {
					t.Fatalf("payload %d not restored exactly (%d missing)", i, nmiss)
				}
			}
			return
		}

		// Corrupted group: recovery may succeed (errors within the spare
		// parity budget, or erasures consuming all of it) or fail — but a
		// success never hands back silent garbage.
		if err != nil {
			return
		}
		for i, p := range group {
			if p == nil || len(p) != length {
				t.Fatalf("successful recovery left payload %d incomplete", i)
			}
		}
		switch {
		case nmiss == 0:
			// Nothing was missing: RecoverGroup is a no-op and must not
			// have rewritten the caller's payloads, corrupted or not.
			for i := range orig {
				if group[i] == nil {
					t.Fatalf("no-op recovery lost payload %d", i)
				}
			}
		case 2*ncorr+nmiss <= GroupParity:
			// Worst case (every corruption in one column) is still within
			// errors-and-erasures capacity, so the reference decode must
			// have reconstructed the missing payloads exactly. Present
			// payloads keep their corruption: RecoverGroup's contract is
			// to fill the holes, not to launder its inputs.
			for i := range orig {
				if group[i] != nil && missMask&(1<<i) != 0 && !bytes.Equal(group[i], orig[i]) {
					t.Fatalf("missing payload %d not restored exactly under correctable corruption", i)
				}
			}
		case nmiss == GroupParity:
			// All parity consumed by erasures: the solve lands on the
			// unique codeword agreeing with the present (possibly wrong)
			// bytes — whatever it returns must be codeword-valid columns.
			if !groupColumnsClean(group) {
				t.Fatal("erasure-only recovery of a full group is not a valid codeword group")
			}
		}
	})
}
