package mocoder

import (
	"bytes"
	"math/rand"
	"testing"

	"microlonys/internal/bitio"
	"microlonys/internal/emblem"
	"microlonys/raster"
)

// encodeDamagedRef is the reference emblem encoder: the pre-fast-path
// formulation with per-block EncodeFull allocations, a bitio.Writer for
// the stream bits and one FillRect call per module. The Encoder fast path
// must produce byte-identical images.
func encodeDamagedRef(payload []byte, hdr emblem.Header, l emblem.Layout, corrupt func(stream []byte)) (*raster.Gray, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	capBytes := Capacity(l)
	if len(payload) > capBytes {
		return nil, errTest
	}
	hdr.Version = emblem.Version
	hdr.PayloadLen = uint32(len(payload))

	lens := blockLens(codedBytes(l))
	padded := make([]byte, capBytes)
	copy(padded, payload)
	blocks := make([][]byte, len(lens))
	off := 0
	for i, n := range lens {
		blocks[i] = inner.EncodeFull(padded[off : off+n])
		off += n
	}

	stream := hdr.Marshal()
	for c := 1; c < emblem.HeaderCopies; c++ {
		stream = append(stream, hdr.Marshal()...)
	}
	stream = append(stream, interleave(blocks)...)
	if corrupt != nil {
		corrupt(stream)
	}

	w := bitio.NewWriter()
	w.WriteBytes(stream)
	for b := 0; w.Len() < l.StreamBits(); b ^= 1 {
		w.WriteBit(b)
	}
	return renderRef(w.Bytes(), l), nil
}

var errTest = errorString("payload exceeds capacity")

type errorString string

func (e errorString) Error() string { return string(e) }

// renderRef paints the emblem module by module through FillRect and a
// bitio.Reader, exactly as render did before the row-writer rewrite.
func renderRef(bits []byte, l emblem.Layout) *raster.Gray {
	px := l.PxPerModule
	img := raster.New(l.ImageW(), l.ImageH())

	mod := func(mx0, my0, mx1, my1 int, v byte) {
		img.FillRect(mx0*px, my0*px, mx1*px, my1*px, v)
	}

	q, b := emblem.QuietModules, emblem.BorderModules
	fw, fh := l.FullModulesW(), l.FullModulesH()
	mod(q, q, fw-q, fh-q, 0)
	mod(q+b, q+b, fw-q-b, fh-q-b, 255)
	m := emblem.MarginModules

	corners := [4][2]int{
		{0, 0},
		{l.DataW - emblem.CornerBox, 0},
		{l.DataW - emblem.CornerBox, l.DataH - emblem.CornerBox},
		{0, l.DataH - emblem.CornerBox},
	}
	for c, origin := range corners {
		pat := emblem.CornerPattern(c)
		for y := 0; y < emblem.CornerBox; y++ {
			for x := 0; x < emblem.CornerBox; x++ {
				if pat[y][x] {
					gx, gy := m+origin[0]+x, m+origin[1]+y
					mod(gx, gy, gx+1, gy+1, 0)
				}
			}
		}
	}

	path := l.DataPath()
	r := bitio.NewReader(bits)
	level := 0
	nbits := l.StreamBits()
	for i := 0; i < nbits; i++ {
		bit, err := r.ReadBit()
		if err != nil {
			bit = i & 1
		}
		half1 := 1 - level
		half2 := half1
		if bit == 1 {
			half2 = 1 - half1
		}
		level = half2
		for h, v := range [2]int{half1, half2} {
			p := path[2*i+h]
			if v == 1 {
				gx, gy := m+p.X, m+p.Y
				mod(gx, gy, gx+1, gy+1, 0)
			}
		}
	}
	return img
}

var fastLayouts = []emblem.Layout{
	{DataW: 80, DataH: 64, PxPerModule: 1},
	{DataW: 80, DataH: 64, PxPerModule: 2},
	{DataW: 120, DataH: 90, PxPerModule: 3},
	{DataW: 101, DataH: 83, PxPerModule: 5}, // odd sizes, odd pitch
}

// TestEncodeFastRender pins the row-writer render + inline bit streaming
// to the FillRect/bitio reference, byte for byte, over layouts, payload
// fills and the damage hook.
func TestEncodeFastRender(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, l := range fastLayouts {
		capacity := Capacity(l)
		for _, fill := range []int{0, 1, capacity / 2, capacity} {
			payload := make([]byte, fill)
			rng.Read(payload)
			hdr := emblem.Header{Kind: emblem.KindData, Index: 7, GroupID: 3}

			got, err := Encode(payload, hdr, l)
			if err != nil {
				t.Fatalf("layout %+v fill %d: %v", l, fill, err)
			}
			want, err := encodeDamagedRef(payload, hdr, l, nil)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			if !raster.Equal(got, want) {
				t.Fatalf("layout %+v fill %d: fast render differs from reference (%d pixels)",
					l, fill, raster.DiffCount(got, want))
			}
		}

		// Damage hook: the corrupt callback must see the same stream and
		// the corrupted image must still match the reference.
		payload := make([]byte, capacity)
		rng.Read(payload)
		hdr := emblem.Header{Kind: emblem.KindRaw}
		corrupt := func(stream []byte) {
			for i := 5; i < len(stream); i += 97 {
				stream[i] ^= 0xA5
			}
		}
		got, err := EncodeDamaged(payload, hdr, l, corrupt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := encodeDamagedRef(payload, hdr, l, corrupt)
		if err != nil {
			t.Fatal(err)
		}
		if !raster.Equal(got, want) {
			t.Fatalf("layout %+v: damaged fast render differs from reference", l)
		}
	}
}

// TestEncoderReuse pins a reused Encoder to fresh package-level Encodes
// across a frame sequence that changes payload fill and layout mid-run —
// scratch from one frame must never leak into the next.
func TestEncoderReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	var e Encoder
	for trial := 0; trial < 30; trial++ {
		l := fastLayouts[trial%len(fastLayouts)]
		payload := make([]byte, rng.Intn(Capacity(l)+1))
		rng.Read(payload)
		hdr := emblem.Header{Kind: emblem.KindData, Index: uint16(trial)}

		got, err := e.Encode(payload, hdr, l)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := Encode(payload, hdr, l)
		if err != nil {
			t.Fatalf("trial %d fresh: %v", trial, err)
		}
		if !raster.Equal(got, want) {
			t.Fatalf("trial %d: reused encoder differs from fresh (%d pixels)",
				trial, raster.DiffCount(got, want))
		}
	}
}

// TestEncoderRoundTrip decodes emblems produced by a reused Encoder.
func TestEncoderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 3}
	var e Encoder
	for trial := 0; trial < 5; trial++ {
		payload := make([]byte, Capacity(l))
		rng.Read(payload)
		hdr := emblem.Header{Kind: emblem.KindRaw, Index: uint16(trial)}
		img, err := e.Encode(payload, hdr, l)
		if err != nil {
			t.Fatal(err)
		}
		got, gotHdr, _, err := Decode(img, l)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !bytes.Equal(got, payload) || gotHdr.Index != uint16(trial) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

// TestAppendStreamBitsDifferential pins the inline bit serialization to
// bitio.Writer for every filler length 0..64 bits.
func TestAppendStreamBitsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, streamLen := range []int{0, 1, 7, 64} {
		stream := make([]byte, streamLen)
		rng.Read(stream)
		for extra := 0; extra <= 64; extra++ {
			nbits := streamLen*8 + extra
			w := bitio.NewWriter()
			w.WriteBytes(stream)
			for b := 0; w.Len() < nbits; b ^= 1 {
				w.WriteBit(b)
			}
			want := w.Bytes()
			got := appendStreamBits(nil, stream, nbits)
			if !bytes.Equal(got, want) {
				t.Fatalf("streamLen=%d extra=%d: %x vs bitio %x", streamLen, extra, got, want)
			}
		}
	}
}

// TestEncoderAllocs checks the steady-state claim: with the layout fixed,
// an Encode through a reused Encoder allocates only the returned image.
func TestEncoderAllocs(t *testing.T) {
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 3}
	payload := make([]byte, Capacity(l))
	rand.New(rand.NewSource(39)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindRaw}
	var e Encoder
	if _, err := e.Encode(payload, hdr, l); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.Encode(payload, hdr, l); err != nil {
			t.Fatal(err)
		}
	})
	// raster.New allocates the Gray struct and its Pix buffer.
	if allocs > 2 {
		t.Fatalf("steady-state Encode allocates %.0f objects, want ≤ 2 (the placed frame)", allocs)
	}
}

func BenchmarkEncoderReuse(b *testing.B) {
	l := emblem.Layout{DataW: 120, DataH: 90, PxPerModule: 3}
	payload := make([]byte, Capacity(l))
	rand.New(rand.NewSource(41)).Read(payload)
	hdr := emblem.Header{Kind: emblem.KindRaw}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Encode(payload, hdr, l); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		b.ReportAllocs()
		var e Encoder
		for i := 0; i < b.N; i++ {
			if _, err := e.Encode(payload, hdr, l); err != nil {
				b.Fatal(err)
			}
		}
	})
}
