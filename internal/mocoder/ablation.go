package mocoder

import (
	"fmt"

	"microlonys/internal/bitio"
	"microlonys/internal/emblem"
	"microlonys/raster"
)

// Ablation support (experiment E9): "absolute" modulation maps each bit
// to a single module (dark = 1) with no self-clocking — the QR-style
// alternative §3.1 argues against. It shares the emblem geometry, header
// and Reed-Solomon layers, so any robustness difference against the
// Differential-Manchester emblems isolates the modulation choice. Both
// modes carry the same stream (absolute mode simply leaves the second
// half of the module path as filler), keeping capacity identical for a
// fair comparison.

// EncodeAbsolute renders payload with absolute (non-self-clocking)
// modulation.
func EncodeAbsolute(payload []byte, hdr emblem.Header, l emblem.Layout) (*raster.Gray, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	capBytes := Capacity(l)
	if len(payload) > capBytes {
		return nil, fmt.Errorf("mocoder: payload %d bytes exceeds capacity %d", len(payload), capBytes)
	}
	hdr.Version = emblem.Version
	hdr.PayloadLen = uint32(len(payload))

	lens := blockLens(codedBytes(l))
	padded := make([]byte, capBytes)
	copy(padded, payload)
	blocks := make([][]byte, len(lens))
	off := 0
	for i, n := range lens {
		blocks[i] = inner.EncodeFull(padded[off : off+n])
		off += n
	}
	stream := hdr.Marshal()
	for c := 1; c < emblem.HeaderCopies; c++ {
		stream = append(stream, hdr.Marshal()...)
	}
	stream = append(stream, interleave(blocks)...)

	w := bitio.NewWriter()
	w.WriteBytes(stream)
	for b := 0; w.Len() < l.StreamBits(); b ^= 1 {
		w.WriteBit(b)
	}
	bits := w.Bytes()

	// Render: identical chrome; data bits occupy one module each.
	px := l.PxPerModule
	img := raster.New(l.ImageW(), l.ImageH())
	mod := func(mx0, my0, mx1, my1 int, v byte) {
		img.FillRect(mx0*px, my0*px, mx1*px, my1*px, v)
	}
	q, bmod := emblem.QuietModules, emblem.BorderModules
	fw, fh := l.FullModulesW(), l.FullModulesH()
	mod(q, q, fw-q, fh-q, 0)
	mod(q+bmod, q+bmod, fw-q-bmod, fh-q-bmod, 255)
	m := emblem.MarginModules
	corners := [4][2]int{
		{0, 0},
		{l.DataW - emblem.CornerBox, 0},
		{l.DataW - emblem.CornerBox, l.DataH - emblem.CornerBox},
		{0, l.DataH - emblem.CornerBox},
	}
	for c, origin := range corners {
		pat := emblem.CornerPattern(c)
		for y := 0; y < emblem.CornerBox; y++ {
			for x := 0; x < emblem.CornerBox; x++ {
				if pat[y][x] {
					gx, gy := m+origin[0]+x, m+origin[1]+y
					mod(gx, gy, gx+1, gy+1, 0)
				}
			}
		}
	}
	path := l.DataPath()
	r := bitio.NewReader(bits)
	nbits := l.StreamBits()
	for i := 0; i < nbits; i++ {
		bit, err := r.ReadBit()
		if err != nil {
			bit = i & 1
		}
		if bit == 1 {
			p := path[i]
			gx, gy := m+p.X, m+p.Y
			mod(gx, gy, gx+1, gy+1, 0)
		}
	}
	// Remaining modules: alternating filler so overall darkness matches.
	for i := nbits; i < len(path); i++ {
		if i&1 == 0 {
			p := path[i]
			gx, gy := m+p.X, m+p.Y
			mod(gx, gy, gx+1, gy+1, 0)
		}
	}
	return img, nil
}

// DecodeAbsolute decodes an EncodeAbsolute emblem. Without the
// self-clocking layer there are no boundary transitions to flag erasures,
// so the inner code gets no hints.
func DecodeAbsolute(img *raster.Gray, l emblem.Layout) ([]byte, emblem.Header, *Stats, error) {
	if err := l.Validate(); err != nil {
		return nil, emblem.Header{}, nil, err
	}
	st := &Stats{}
	st.Threshold = img.OtsuThreshold()

	ds := &DecodeScratch{}
	corners, err := findFrame(ds, img, st.Threshold, l)
	if err != nil {
		return nil, emblem.Header{}, st, err
	}
	rot, mapper, err := orient(ds, img, st.Threshold, corners, l)
	if err != nil {
		return nil, emblem.Header{}, st, err
	}
	st.Rotation = rot * 90

	sm := newModuleSampler(img, mapper, ds, l)
	path := l.DataPath()
	nbits := l.StreamBits()
	stream := make([]byte, (nbits+7)/8)
	for i := 0; i < nbits; i++ {
		p := path[i]
		if sm.sample(p.X, p.Y) < float64(st.Threshold) {
			stream[i/8] |= 1 << uint(7-i%8)
		}
	}

	hdr, err := emblem.RecoverHeader(stream)
	if err != nil {
		return nil, emblem.Header{}, st, err
	}
	hb := emblem.HeaderCopies * emblem.HeaderSize
	cb := codedBytes(l)
	coded := stream[hb:]
	if len(coded) > cb {
		coded = coded[:cb]
	}
	lens := blockLens(cb)
	blocks, _ := deinterleave(coded, make([]bool, len(coded)), lens)
	payload := make([]byte, 0, Capacity(l))
	for i, cw := range blocks {
		n, err := inner.Decode(cw, nil)
		if err != nil {
			return nil, hdr, st, fmt.Errorf("%w: block %d/%d: %v", ErrUncorrectable, i+1, len(blocks), err)
		}
		st.BytesCorrected += n
		st.BlocksDecoded++
		payload = append(payload, cw[:lens[i]]...)
	}
	if int(hdr.PayloadLen) > len(payload) {
		return nil, hdr, st, fmt.Errorf("%w: header claims %d bytes", emblem.ErrHeader, hdr.PayloadLen)
	}
	return payload[:hdr.PayloadLen], hdr, st, nil
}
