package mocoder

import (
	"errors"
	"fmt"

	"microlonys/internal/rs"
)

// Outer (inter-emblem) code parameters from §3.1 of the paper: "three
// parity emblems with each set of 17 data emblems", giving full bit-for-bit
// restoration of a series of 20 emblems in which any three are missing.
const (
	GroupData   = rs.OuterData   // 17
	GroupParity = rs.OuterParity // 3
	GroupTotal  = rs.OuterTotal  // 20
)

var outer = rs.New(GroupParity)

// ErrGroupSize reports an invalid group shape.
var ErrGroupSize = errors.New("mocoder: invalid emblem group")

// ErrGroupUnrecoverable reports more lost emblems than parity can restore.
var ErrGroupUnrecoverable = errors.New("mocoder: too many emblems missing from group")

// GroupParityPayloads computes the parity emblem payloads for a group of
// 1..17 data emblem payloads. Payloads may have different lengths; the
// code works column-wise over zero-padded columns, so every parity payload
// has the length of the longest data payload.
func GroupParityPayloads(data [][]byte) ([][]byte, error) {
	if len(data) == 0 || len(data) > GroupData {
		return nil, fmt.Errorf("%w: %d data payloads (want 1..%d)", ErrGroupSize, len(data), GroupData)
	}
	maxLen := 0
	for _, d := range data {
		if len(d) > maxLen {
			maxLen = len(d)
		}
	}
	if maxLen == 0 {
		return nil, fmt.Errorf("%w: empty payloads", ErrGroupSize)
	}
	parity := make([][]byte, GroupParity)
	for i := range parity {
		parity[i] = make([]byte, maxLen)
	}
	col := make([]byte, len(data))
	par := make([]byte, GroupParity)
	for j := 0; j < maxLen; j++ {
		for i, d := range data {
			if j < len(d) {
				col[i] = d[j]
			} else {
				col[i] = 0
			}
		}
		outer.EncodeInto(par, col)
		for i := range parity {
			parity[i][j] = par[i]
		}
	}
	return parity, nil
}

// RecoverGroup reconstructs missing emblem payloads in place. payloads
// holds the group's emblems in group order (data emblems first, then
// parity); missing entries are nil. At most GroupParity emblems may be
// missing. All present payloads must have equal length (the emblem layer
// pads to emblem capacity, so this holds for intact groups).
func RecoverGroup(payloads [][]byte) error {
	n := len(payloads)
	nd := n - GroupParity
	if n < GroupParity+1 || nd > GroupData {
		return fmt.Errorf("%w: group of %d", ErrGroupSize, n)
	}
	var missing []int
	length := -1
	for i, p := range payloads {
		if p == nil {
			missing = append(missing, i)
			continue
		}
		if length == -1 {
			length = len(p)
		} else if len(p) != length {
			return fmt.Errorf("%w: payload length mismatch (%d vs %d)", ErrGroupSize, len(p), length)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(missing) > GroupParity {
		return fmt.Errorf("%w: %d missing, parity covers %d", ErrGroupUnrecoverable, len(missing), GroupParity)
	}
	if length <= 0 {
		return fmt.Errorf("%w: no intact payloads", ErrGroupUnrecoverable)
	}
	for _, i := range missing {
		payloads[i] = make([]byte, length)
	}
	cw := make([]byte, n)
	for j := 0; j < length; j++ {
		for i, p := range payloads {
			cw[i] = p[j]
		}
		if _, err := outer.Decode(cw, missing); err != nil {
			return fmt.Errorf("recovering column %d: %w", j, err)
		}
		for _, i := range missing {
			payloads[i][j] = cw[i]
		}
	}
	return nil
}
