package mocoder

import (
	"errors"
	"fmt"

	"microlonys/internal/gf256"
	"microlonys/internal/rs"
)

// Outer (inter-emblem) code parameters from §3.1 of the paper: "three
// parity emblems with each set of 17 data emblems", giving full bit-for-bit
// restoration of a series of 20 emblems in which any three are missing.
const (
	GroupData   = rs.OuterData   // 17
	GroupParity = rs.OuterParity // 3
	GroupTotal  = rs.OuterTotal  // 20
)

var outer = rs.New(GroupParity)

// ErrGroupSize reports an invalid group shape.
var ErrGroupSize = errors.New("mocoder: invalid emblem group")

// ErrGroupUnrecoverable reports more lost emblems than parity can restore.
var ErrGroupUnrecoverable = errors.New("mocoder: too many emblems missing from group")

// GroupParityPayloads computes the parity emblem payloads for a group of
// 1..17 data emblem payloads. Payloads may have different lengths; the
// code works column-wise over zero-padded columns, so every parity payload
// has the length of the longest data payload.
func GroupParityPayloads(data [][]byte) ([][]byte, error) {
	if len(data) == 0 || len(data) > GroupData {
		return nil, fmt.Errorf("%w: %d data payloads (want 1..%d)", ErrGroupSize, len(data), GroupData)
	}
	maxLen := 0
	for _, d := range data {
		if len(d) > maxLen {
			maxLen = len(d)
		}
	}
	if maxLen == 0 {
		return nil, fmt.Errorf("%w: empty payloads", ErrGroupSize)
	}
	parity := make([][]byte, GroupParity)
	for i := range parity {
		parity[i] = make([]byte, maxLen)
	}
	// Group-wide encode: one 8-way-folded table pass per (data, parity)
	// row pair instead of an LFSR run per byte column. Byte-identical to
	// the per-column formulation (TestGroupParityRowMajor).
	outer.EncodeRowsInto(parity, data)
	return parity, nil
}

// RecoverGroup reconstructs missing emblem payloads in place. payloads
// holds the group's emblems in group order (data emblems first, then
// parity); missing entries are nil. At most GroupParity emblems may be
// missing. All present payloads must have equal length (the emblem layer
// pads to emblem capacity, so this holds for intact groups).
func RecoverGroup(payloads [][]byte) error {
	n := len(payloads)
	nd := n - GroupParity
	if n < GroupParity+1 || nd > GroupData {
		return fmt.Errorf("%w: group of %d", ErrGroupSize, n)
	}
	var missing []int
	length := -1
	for i, p := range payloads {
		if p == nil {
			missing = append(missing, i)
			continue
		}
		if length == -1 {
			length = len(p)
		} else if len(p) != length {
			return fmt.Errorf("%w: payload length mismatch (%d vs %d)", ErrGroupSize, len(p), length)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(missing) > GroupParity {
		return fmt.Errorf("%w: %d missing, parity covers %d", ErrGroupUnrecoverable, len(missing), GroupParity)
	}
	if length <= 0 {
		return fmt.Errorf("%w: no intact payloads", ErrGroupUnrecoverable)
	}
	for _, i := range missing {
		payloads[i] = make([]byte, length)
	}

	// Every payload byte column is the same erasure pattern — the missing
	// emblem positions — so the column erasure solve is computed once per
	// group and applied row-major: each missing payload accumulates each
	// present payload scaled by its solve coefficient, one contiguous
	// table-lookup pass per (missing, present) pair, instead of
	// re-deriving locator, evaluator and Forney magnitudes for every one
	// of the (typically tens of thousands of) byte columns. Output bytes
	// are identical to the per-column rs Decode (the erasure correction is
	// linear in the received column; pinned by TestRecoverGroupFastSolve).
	coef, err := outer.ErasureSolve(n, missing)
	if err != nil {
		return fmt.Errorf("recovering group: %w", err)
	}
	for mi, m := range missing {
		out := payloads[m]
		row := coef[mi]
		for k, src := range payloads {
			if k == m {
				continue
			}
			gf256.MulAddSlice(out, src, row[k])
		}
	}

	// The solve assumed every present byte is correct. With parity-many
	// emblems missing that assumption is free: the solve consumes all
	// parity equations, so it lands on a codeword column for column —
	// exactly where the reference per-column decode lands (neither can
	// see a corrupted present byte). With spare parity, though, the
	// reference decoder would have *used* it — correcting a present error
	// within capacity or rejecting the column — so verify the
	// reconstruction: a column containing a present error cannot be a
	// codeword (it would sit within distance parity of the true word),
	// and a non-codeword column sends the whole group down the reference
	// formulation.
	if len(missing) < GroupParity && !groupColumnsClean(payloads) {
		for _, i := range missing {
			clear(payloads[i])
		}
		return recoverGroupColumns(payloads, missing)
	}
	return nil
}

// groupColumnsClean reports whether every byte column of the group is a
// valid outer-code codeword — the group-wide rs.RowsClean kernel: each
// syndrome power is one 8-way-folded table pass per payload (a plain
// word-XOR pass for power 0) instead of gathering every column.
func groupColumnsClean(payloads [][]byte) bool {
	return outer.RowsClean(payloads)
}

// recoverGroupColumns is the reference formulation: one full
// errors-and-erasures decode per byte column. RecoverGroup falls back to
// it when a present payload byte is corrupted, so error correction and
// rejection behave exactly as they always did.
func recoverGroupColumns(payloads [][]byte, missing []int) error {
	n := len(payloads)
	length := len(payloads[0])
	cw := make([]byte, n)
	var s rs.DecodeScratch
	for j := 0; j < length; j++ {
		for i, p := range payloads {
			cw[i] = p[j]
		}
		if _, err := outer.DecodeWith(&s, cw, missing); err != nil {
			return fmt.Errorf("recovering column %d: %w", j, err)
		}
		for _, i := range missing {
			payloads[i][j] = cw[i]
		}
	}
	return nil
}
