package mocoder

import (
	"bytes"
	"math/rand"
	"testing"
)

// groupParityRef is the pre-row-major GroupParityPayloads formulation,
// kept verbatim: gather each zero-padded byte column, run the outer LFSR
// encoder, scatter the parity bytes.
func groupParityRef(data [][]byte) [][]byte {
	maxLen := 0
	for _, d := range data {
		if len(d) > maxLen {
			maxLen = len(d)
		}
	}
	parity := make([][]byte, GroupParity)
	for i := range parity {
		parity[i] = make([]byte, maxLen)
	}
	col := make([]byte, len(data))
	par := make([]byte, GroupParity)
	for j := 0; j < maxLen; j++ {
		for i, d := range data {
			if j < len(d) {
				col[i] = d[j]
			} else {
				col[i] = 0
			}
		}
		outer.EncodeInto(par, col)
		for i := range parity {
			parity[i][j] = par[i]
		}
	}
	return parity
}

// TestGroupParityRowMajor pins the group-wide row-major parity encode to
// the per-column reference across group sizes, ragged payload lengths
// (the zero-padded short tail), and fold-boundary lengths.
func TestGroupParityRowMajor(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, nd := range []int{1, 2, 5, GroupData} {
		for _, maxLen := range []int{1, 7, 8, 9, 300, 4096} {
			data := make([][]byte, nd)
			for i := range data {
				n := maxLen
				if i%2 == 1 && maxLen > 1 {
					n = 1 + rng.Intn(maxLen)
				}
				data[i] = make([]byte, n)
				rng.Read(data[i])
			}
			data[0] = data[0][:maxLen] // realize maxLen

			want := groupParityRef(data)
			got, err := GroupParityPayloads(data)
			if err != nil {
				t.Fatalf("nd=%d len=%d: GroupParityPayloads: %v", nd, maxLen, err)
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("nd=%d len=%d: parity payload %d diverged from per-column reference", nd, maxLen, i)
				}
			}
			// Round-trip sanity: the group must still recover a wiped
			// payload through the parity just computed.
			group := make([][]byte, 0, nd+GroupParity)
			for _, d := range data {
				padded := make([]byte, maxLen)
				copy(padded, d)
				group = append(group, padded)
			}
			group = append(group, got...)
			wipe := rng.Intn(len(group))
			orig := append([]byte(nil), group[wipe]...)
			group[wipe] = nil
			if err := RecoverGroup(group); err != nil {
				t.Fatalf("nd=%d len=%d: RecoverGroup: %v", nd, maxLen, err)
			}
			if !bytes.Equal(group[wipe], orig) {
				t.Fatalf("nd=%d len=%d: recovered payload %d diverged", nd, maxLen, wipe)
			}
		}
	}
}
