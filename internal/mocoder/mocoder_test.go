package mocoder

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"microlonys/internal/emblem"
	"microlonys/raster"
)

func testLayout() emblem.Layout {
	return emblem.Layout{DataW: 120, DataH: 90, PxPerModule: 4}
}

func testHeader(payloadLen int) emblem.Header {
	return emblem.Header{
		Kind: emblem.KindData, Index: 0, Total: 1,
		GroupID: 0, GroupPos: 0, GroupData: 1, GroupParity: 0,
		TotalLen: uint32(payloadLen),
	}
}

func randPayload(t *testing.T, l emblem.Layout, frac float64) []byte {
	t.Helper()
	n := int(float64(Capacity(l)) * frac)
	p := make([]byte, n)
	rand.New(rand.NewSource(42)).Read(p)
	return p
}

func TestCapacityPositive(t *testing.T) {
	l := testLayout()
	c := Capacity(l)
	if c <= 0 {
		t.Fatalf("capacity %d", c)
	}
	// 120×90 data modules − 4 corner boxes = 10656 modules → 5328 bits;
	// minus 528 header bits → 4800 bits = 600 coded bytes → blocks.
	if c > 600 {
		t.Fatalf("capacity %d exceeds coded budget", c)
	}
}

func TestEncodeRejectsOversized(t *testing.T) {
	l := testLayout()
	if _, err := Encode(make([]byte, Capacity(l)+1), testHeader(0), l); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestEncodeRejectsBadLayout(t *testing.T) {
	if _, err := Encode([]byte{1}, testHeader(1), emblem.Layout{DataW: 4, DataH: 4, PxPerModule: 1}); err == nil {
		t.Fatal("bad layout accepted")
	}
}

func TestRoundTripClean(t *testing.T) {
	l := testLayout()
	payload := randPayload(t, l, 1.0)
	img, err := Encode(payload, testHeader(len(payload)), l)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != l.ImageW() || img.H != l.ImageH() {
		t.Fatalf("image size %dx%d", img.W, img.H)
	}
	got, hdr, st, err := Decode(img, l)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
	if hdr.Kind != emblem.KindData || int(hdr.PayloadLen) != len(payload) {
		t.Fatalf("header wrong: %+v", hdr)
	}
	if st.BytesCorrected != 0 || st.ClockViolations != 0 {
		t.Fatalf("clean image needed correction: %+v", st)
	}
}

func TestRoundTripPartialPayload(t *testing.T) {
	l := testLayout()
	payload := []byte("short payload, rest of the emblem is padding")
	img, err := Encode(payload, testHeader(len(payload)), l)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := Decode(img, l)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("partial payload round trip: %v", err)
	}
}

func TestRoundTripAllRotations(t *testing.T) {
	l := testLayout()
	payload := randPayload(t, l, 0.8)
	img, err := Encode(payload, testHeader(len(payload)), l)
	if err != nil {
		t.Fatal(err)
	}
	for rot := 0; rot < 4; rot++ {
		rotated := img.Rotate90(rot)
		got, _, st, err := Decode(rotated, l)
		if err != nil {
			t.Fatalf("rotation %d: %v", rot*90, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("rotation %d: payload mismatch", rot*90)
		}
		if st.Rotation != rot*90 {
			t.Fatalf("rotation %d detected as %d", rot*90, st.Rotation)
		}
	}
}

func TestRoundTripRescaled(t *testing.T) {
	// Scanners capture at higher resolution than the print grid (the
	// cinema experiment scans 2K frames at 4K).
	l := testLayout()
	payload := randPayload(t, l, 0.9)
	img, err := Encode(payload, testHeader(len(payload)), l)
	if err != nil {
		t.Fatal(err)
	}
	scan := img.Resize(img.W*2, img.H*2)
	got, _, _, err := Decode(scan, l)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("2x rescan: %v", err)
	}
	// And a mild downscale.
	scan = img.Resize(img.W*3/4, img.H*3/4)
	got, _, _, err = Decode(scan, l)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("0.75x rescan: %v", err)
	}
}

func TestRoundTripBlur(t *testing.T) {
	l := testLayout()
	payload := randPayload(t, l, 0.9)
	img, _ := Encode(payload, testHeader(len(payload)), l)
	blurred := img.BoxBlur(1)
	got, _, _, err := Decode(blurred, l)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("blurred decode: %v", err)
	}
}

func TestRoundTripSmallRotationWarp(t *testing.T) {
	// Sub-degree rotation, as from a slightly skewed page on a scanner.
	l := testLayout()
	payload := randPayload(t, l, 0.8)
	img, _ := Encode(payload, testHeader(len(payload)), l)
	theta := 0.6 * math.Pi / 180
	cx, cy := float64(img.W)/2, float64(img.H)/2
	sin, cos := math.Sin(theta), math.Cos(theta)
	rot := img.Warp(func(x, y float64) (float64, float64) {
		dx, dy := x-cx, y-cy
		return cx + cos*dx - sin*dy, cy + sin*dx + cos*dy
	})
	got, _, _, err := Decode(rot, l)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("0.6 degree rotation: %v", err)
	}
}

func TestDustDamageCorrected(t *testing.T) {
	l := testLayout()
	payload := randPayload(t, l, 1.0)
	img, _ := Encode(payload, testHeader(len(payload)), l)
	// Sprinkle dust specks over the data region (away from the border).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		x := 40 + rng.Intn(img.W-80)
		y := 40 + rng.Intn(img.H-80)
		r := 2 + rng.Intn(3)
		img.FillRect(x-r, y-r, x+r, y+r, byte(rng.Intn(2)*255))
	}
	got, _, st, err := Decode(img, l)
	if err != nil {
		t.Fatalf("dusty decode: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("dusty payload mismatch")
	}
	if st.BytesCorrected == 0 {
		t.Log("note: dust fell on padding only (no corrections needed)")
	}
}

func TestHeavyDamageFailsLoudly(t *testing.T) {
	l := testLayout()
	payload := randPayload(t, l, 1.0)
	img, _ := Encode(payload, testHeader(len(payload)), l)
	// Obliterate a third of the data region.
	img.FillRect(img.W/4, img.H/4, img.W*3/4, img.H*3/4, 0)
	_, _, _, err := Decode(img, l)
	if err == nil {
		t.Fatal("heavily damaged emblem decoded without error")
	}
}

func TestNoEmblemInNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	img := raster.New(400, 300)
	for i := range img.Pix {
		img.Pix[i] = byte(rng.Intn(256))
	}
	if _, _, _, err := Decode(img, testLayout()); err == nil {
		t.Fatal("decoded an emblem from pure noise")
	}
}

func TestBlankImageRejected(t *testing.T) {
	img := raster.New(400, 300)
	if _, _, _, err := Decode(img, testLayout()); !errors.Is(err, ErrNoEmblem) {
		t.Fatalf("blank image: %v", err)
	}
}

func TestInterleaveOrder(t *testing.T) {
	blocks := [][]byte{
		{1, 2, 3, 4, 5},
		{10, 20, 30},
		{100, 101, 102, 103},
	}
	flat := interleave(blocks)
	if len(flat) != 12 {
		t.Fatalf("interleaved length %d", len(flat))
	}
	want := []byte{1, 10, 100, 2, 20, 101, 3, 30, 102, 4, 103, 5}
	if !bytes.Equal(flat, want) {
		t.Fatalf("interleave order %v, want %v", flat, want)
	}
}

func TestDeinterleaveMatchesInterleave(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lens := []int{223, 223, 150}
	var blocks [][]byte
	for _, n := range lens {
		b := make([]byte, n+32)
		rng.Read(b)
		blocks = append(blocks, b)
	}
	flat := interleave(blocks)
	got, eras := deinterleave(flat, make([]bool, len(flat)), lens)
	for i := range blocks {
		if !bytes.Equal(got[i], blocks[i]) {
			t.Fatalf("block %d mismatch", i)
		}
		if len(eras[i]) != 0 {
			t.Fatalf("spurious erasures in block %d", i)
		}
	}
}

func TestDeinterleaveSuspects(t *testing.T) {
	lens := []int{100}
	block := make([]byte, 132)
	flat := interleave([][]byte{block})
	suspect := make([]bool, len(flat))
	suspect[5] = true
	suspect[100] = true
	_, eras := deinterleave(flat, suspect, lens)
	if len(eras[0]) != 2 || eras[0][0] != 5 || eras[0][1] != 100 {
		t.Fatalf("erasures %v", eras[0])
	}
}

func TestFigure1Render(t *testing.T) {
	// Figure 1 of the paper: a sample emblem. Must render with border,
	// corner marks and a roughly half-dark data field.
	l := emblem.Layout{DataW: 64, DataH: 64, PxPerModule: 3}
	payload := make([]byte, Capacity(l))
	rand.New(rand.NewSource(1)).Read(payload)
	img, err := Encode(payload, testHeader(len(payload)), l)
	if err != nil {
		t.Fatal(err)
	}
	mean := img.Mean()
	if mean < 80 || mean > 220 {
		t.Fatalf("emblem mean intensity %f implausible", mean)
	}
	// Quiet zone white, border black.
	if img.At(0, 0) != 255 {
		t.Fatal("quiet zone not white")
	}
	bx := (emblem.QuietModules + 1) * l.PxPerModule
	if img.At(bx, bx) != 0 {
		t.Fatal("border not black")
	}
}
