// Package mocoder implements MOCoder, the media layout encoder/decoder of
// Micr'Olonys (§3.1).
//
// MOCoder performs the "physical" layout of bits across emblems on visual
// analog media. Unlike QR-style barcodes it carries no separate clocking
// system: the bit signal and clock signal are paired as in Differential
// Manchester encoding (each bit occupies two modules with a guaranteed
// transition at every bit boundary; a mid-cell transition encodes 1), giving
// robust local clock recovery. A thick black border and four large-scale
// corner marks allow fast, robust detection of emblem geometry and
// orientation in a scanned image.
//
// On top of the visual layer sits a bidimensional error-correction scheme
// with nested Reed-Solomon codes: the inner code RS(255,223) is interleaved
// across the emblem and corrects ≈7.2 % damaged user data per emblem; the
// outer code adds parity emblems (by default 3 per 17) so that any three
// emblems of a group of twenty can be lost altogether (see group.go).
package mocoder

import (
	"errors"
	"fmt"

	"microlonys/internal/bitio"
	"microlonys/internal/emblem"
	"microlonys/internal/rs"
	"microlonys/raster"
)

// minRemainderBlock is the smallest shortened trailing RS block worth
// emitting (parity plus a useful amount of data).
const minRemainderBlock = 48

// inner is the shared inner-code instance (RS with 32 parity bytes).
var inner = rs.New(rs.InnerParity)

// blockLens returns the data lengths of the inner RS blocks that fill the
// coded-byte budget of the layout.
func blockLens(codedBytes int) []int {
	full := codedBytes / rs.InnerTotal
	rem := codedBytes % rs.InnerTotal
	lens := make([]int, 0, full+1)
	for i := 0; i < full; i++ {
		lens = append(lens, rs.InnerData)
	}
	if rem >= minRemainderBlock {
		lens = append(lens, rem-rs.InnerParity)
	}
	return lens
}

// codedBytes returns the number of whole bytes available to the RS stream.
func codedBytes(l emblem.Layout) int {
	bits := l.StreamBits() - emblem.HeaderCopies*emblem.HeaderSize*8
	if bits < 0 {
		return 0
	}
	return bits / 8
}

// Capacity returns the payload bytes one emblem of this layout carries.
func Capacity(l emblem.Layout) int {
	total := 0
	for _, n := range blockLens(codedBytes(l)) {
		total += n
	}
	return total
}

// Encode renders payload into a fresh emblem image. The payload must fit
// Capacity(l); the header's PayloadLen field is set from len(payload).
func Encode(payload []byte, hdr emblem.Header, l emblem.Layout) (*raster.Gray, error) {
	return EncodeDamaged(payload, hdr, l, nil)
}

// EncodeDamaged renders payload like Encode, but first passes the coded
// stream (header block followed by the interleaved inner-code codewords)
// through corrupt — the failure-injection hook behind the §3.1 damage
// experiments (E5). A nil corrupt is a plain Encode.
func EncodeDamaged(payload []byte, hdr emblem.Header, l emblem.Layout, corrupt func(stream []byte)) (*raster.Gray, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	capBytes := Capacity(l)
	if capBytes == 0 {
		return nil, fmt.Errorf("mocoder: layout %dx%d too small for any payload", l.DataW, l.DataH)
	}
	if len(payload) > capBytes {
		return nil, fmt.Errorf("mocoder: payload %d bytes exceeds capacity %d", len(payload), capBytes)
	}
	hdr.Version = emblem.Version
	hdr.PayloadLen = uint32(len(payload))

	// Pad payload to capacity and split into inner-code blocks.
	lens := blockLens(codedBytes(l))
	padded := make([]byte, capBytes)
	copy(padded, payload)
	blocks := make([][]byte, len(lens))
	off := 0
	for i, n := range lens {
		blocks[i] = inner.EncodeFull(padded[off : off+n])
		off += n
	}

	// Byte-interleave the codewords so that contiguous damage on the
	// medium spreads across blocks.
	stream := hdr.Marshal()
	for c := 1; c < emblem.HeaderCopies; c++ {
		stream = append(stream, hdr.Marshal()...)
	}
	stream = append(stream, interleave(blocks)...)

	if corrupt != nil {
		corrupt(stream)
	}

	// Serialize to bits, pad with alternating filler to the full path.
	w := bitio.NewWriter()
	w.WriteBytes(stream)
	for b := 0; w.Len() < l.StreamBits(); b ^= 1 {
		w.WriteBit(b)
	}
	bits := w.Bytes()

	return render(bits, l), nil
}

// interleave merges codewords round-robin by byte index; shorter blocks
// simply drop out of later rounds.
func interleave(blocks [][]byte) []byte {
	maxLen, total := 0, 0
	for _, b := range blocks {
		total += len(b)
		if len(b) > maxLen {
			maxLen = len(b)
		}
	}
	out := make([]byte, 0, total)
	for i := 0; i < maxLen; i++ {
		for _, b := range blocks {
			if i < len(b) {
				out = append(out, b[i])
			}
		}
	}
	return out
}

// deinterleave reverses interleave given the codeword lengths. It also
// maps stream-level suspicion flags onto per-block erasure positions.
func deinterleave(stream []byte, suspect []bool, lens []int) (blocks [][]byte, erasures [][]int) {
	blocks = make([][]byte, len(lens))
	erasures = make([][]int, len(lens))
	idx := make([]int, len(lens))
	cwLens := make([]int, len(lens))
	maxLen := 0
	for i, n := range lens {
		cwLens[i] = n + rs.InnerParity
		blocks[i] = make([]byte, cwLens[i])
		if cwLens[i] > maxLen {
			maxLen = cwLens[i]
		}
	}
	pos := 0
	for i := 0; i < maxLen; i++ {
		for b := range blocks {
			if i < cwLens[b] {
				if pos < len(stream) {
					blocks[b][idx[b]] = stream[pos]
					if pos < len(suspect) && suspect[pos] {
						erasures[b] = append(erasures[b], idx[b])
					}
				} else {
					// Stream shorter than expected: mark as erasure.
					erasures[b] = append(erasures[b], idx[b])
				}
				idx[b]++
				pos++
			}
		}
	}
	return blocks, erasures
}

// render paints the emblem: quiet zone, border ring, separator, corner
// marks and the Differential-Manchester data modules.
func render(bits []byte, l emblem.Layout) *raster.Gray {
	px := l.PxPerModule
	img := raster.New(l.ImageW(), l.ImageH())

	mod := func(mx0, my0, mx1, my1 int, v byte) {
		img.FillRect(mx0*px, my0*px, mx1*px, my1*px, v)
	}

	// Border ring (between quiet zone and separator).
	q, b := emblem.QuietModules, emblem.BorderModules
	fw, fh := l.FullModulesW(), l.FullModulesH()
	mod(q, q, fw-q, fh-q, 0)           // outer black rect
	mod(q+b, q+b, fw-q-b, fh-q-b, 255) // punch out interior
	m := emblem.MarginModules

	// Corner marks.
	corners := [4][2]int{
		{0, 0},
		{l.DataW - emblem.CornerBox, 0},
		{l.DataW - emblem.CornerBox, l.DataH - emblem.CornerBox},
		{0, l.DataH - emblem.CornerBox},
	}
	for c, origin := range corners {
		pat := emblem.CornerPattern(c)
		for y := 0; y < emblem.CornerBox; y++ {
			for x := 0; x < emblem.CornerBox; x++ {
				if pat[y][x] {
					gx, gy := m+origin[0]+x, m+origin[1]+y
					mod(gx, gy, gx+1, gy+1, 0)
				}
			}
		}
	}

	// Data stream: differential Manchester along the serpentine path.
	path := l.DataPath()
	r := bitio.NewReader(bits)
	level := 0
	nbits := l.StreamBits()
	for i := 0; i < nbits; i++ {
		bit, err := r.ReadBit()
		if err != nil {
			bit = i & 1 // defensive filler; Encode always writes enough
		}
		half1 := 1 - level
		half2 := half1
		if bit == 1 {
			half2 = 1 - half1
		}
		level = half2
		for h, v := range [2]int{half1, half2} {
			p := path[2*i+h]
			if v == 1 {
				gx, gy := m+p.X, m+p.Y
				mod(gx, gy, gx+1, gy+1, 0)
			}
		}
	}
	return img
}

// ErrNoEmblem reports that no emblem geometry could be located in a scan.
var ErrNoEmblem = errors.New("mocoder: no emblem found in image")

// ErrUncorrectable reports damage beyond the inner code's capability.
var ErrUncorrectable = errors.New("mocoder: emblem damaged beyond inner-code correction")
