// Package mocoder implements MOCoder, the media layout encoder/decoder of
// Micr'Olonys (§3.1).
//
// MOCoder performs the "physical" layout of bits across emblems on visual
// analog media. Unlike QR-style barcodes it carries no separate clocking
// system: the bit signal and clock signal are paired as in Differential
// Manchester encoding (each bit occupies two modules with a guaranteed
// transition at every bit boundary; a mid-cell transition encodes 1), giving
// robust local clock recovery. A thick black border and four large-scale
// corner marks allow fast, robust detection of emblem geometry and
// orientation in a scanned image.
//
// On top of the visual layer sits a bidimensional error-correction scheme
// with nested Reed-Solomon codes: the inner code RS(255,223) is interleaved
// across the emblem and corrects ≈7.2 % damaged user data per emblem; the
// outer code adds parity emblems (by default 3 per 17) so that any three
// emblems of a group of twenty can be lost altogether (see group.go).
package mocoder

import (
	"errors"
	"fmt"

	"microlonys/internal/emblem"
	"microlonys/internal/rs"
	"microlonys/raster"
)

// minRemainderBlock is the smallest shortened trailing RS block worth
// emitting (parity plus a useful amount of data).
const minRemainderBlock = 48

// inner is the shared inner-code instance (RS with 32 parity bytes).
var inner = rs.New(rs.InnerParity)

// blockLens returns the data lengths of the inner RS blocks that fill the
// coded-byte budget of the layout.
func blockLens(codedBytes int) []int {
	return appendBlockLens(nil, codedBytes)
}

// appendBlockLens is blockLens into a reused buffer.
func appendBlockLens(lens []int, codedBytes int) []int {
	full := codedBytes / rs.InnerTotal
	rem := codedBytes % rs.InnerTotal
	for i := 0; i < full; i++ {
		lens = append(lens, rs.InnerData)
	}
	if rem >= minRemainderBlock {
		lens = append(lens, rem-rs.InnerParity)
	}
	return lens
}

// codedBytes returns the number of whole bytes available to the RS stream.
func codedBytes(l emblem.Layout) int {
	bits := l.StreamBits() - emblem.HeaderCopies*emblem.HeaderSize*8
	if bits < 0 {
		return 0
	}
	return bits / 8
}

// Capacity returns the payload bytes one emblem of this layout carries.
func Capacity(l emblem.Layout) int {
	total := 0
	for _, n := range blockLens(codedBytes(l)) {
		total += n
	}
	return total
}

// Encode renders payload into a fresh emblem image. The payload must fit
// Capacity(l); the header's PayloadLen field is set from len(payload).
func Encode(payload []byte, hdr emblem.Header, l emblem.Layout) (*raster.Gray, error) {
	return EncodeDamaged(payload, hdr, l, nil)
}

// EncodeDamaged renders payload like Encode, but first passes the coded
// stream (header block followed by the interleaved inner-code codewords)
// through corrupt — the failure-injection hook behind the §3.1 damage
// experiments (E5). A nil corrupt is a plain Encode.
func EncodeDamaged(payload []byte, hdr emblem.Header, l emblem.Layout, corrupt func(stream []byte)) (*raster.Gray, error) {
	return new(Encoder).EncodeDamaged(payload, hdr, l, corrupt)
}

// Encoder renders emblems through reusable per-frame scratch: the padded
// payload, the inner-code codeword and interleave buffers, the serialized
// bit stream and the cached serpentine data path. A zero Encoder is ready
// to use; it must not be used concurrently. In steady state (same layout
// frame after frame — the archival encode stage) an Encode allocates only
// the returned image.
type Encoder struct {
	layout emblem.Layout  // layout the cached fields below belong to
	path   []emblem.Point // cached serpentine data path
	lens   []int          // inner-code block data lengths
	padded []byte         // payload padded to capacity
	cw     []byte         // codewords, back to back
	blocks [][]byte       // slice views into cw, one per codeword
	stream []byte         // header copies + interleaved codewords
	bits   []byte         // serialized stream bits incl. filler
}

// Encode is the package-level Encode through the encoder's scratch.
func (e *Encoder) Encode(payload []byte, hdr emblem.Header, l emblem.Layout) (*raster.Gray, error) {
	return e.EncodeDamaged(payload, hdr, l, nil)
}

// EncodeDamaged is the package-level EncodeDamaged through the encoder's
// scratch. The stream passed to corrupt is owned by the encoder and only
// valid during the call.
func (e *Encoder) EncodeDamaged(payload []byte, hdr emblem.Header, l emblem.Layout, corrupt func(stream []byte)) (*raster.Gray, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if e.path == nil || e.layout != l {
		e.layout = l
		e.path = l.DataPath()
	}
	e.lens = appendBlockLens(e.lens[:0], codedBytes(l))
	capBytes := 0
	for _, n := range e.lens {
		capBytes += n
	}
	if capBytes == 0 {
		return nil, fmt.Errorf("mocoder: layout %dx%d too small for any payload", l.DataW, l.DataH)
	}
	if len(payload) > capBytes {
		return nil, fmt.Errorf("mocoder: payload %d bytes exceeds capacity %d", len(payload), capBytes)
	}
	hdr.Version = emblem.Version
	hdr.PayloadLen = uint32(len(payload))

	// Pad payload to capacity and split into inner-code blocks, encoding
	// each codeword (data || parity) into the reused back-to-back buffer.
	e.padded = append(e.padded[:0], payload...)
	for len(e.padded) < capBytes {
		e.padded = append(e.padded, 0)
	}
	total := 0
	for _, n := range e.lens {
		total += n + rs.InnerParity
	}
	if cap(e.cw) < total {
		e.cw = make([]byte, 0, total)
	} else {
		e.cw = e.cw[:0]
	}
	e.blocks = e.blocks[:0]
	off := 0
	for _, n := range e.lens {
		e.cw = append(e.cw, e.padded[off:off+n]...)
		start := len(e.cw)
		for i := 0; i < rs.InnerParity; i++ {
			e.cw = append(e.cw, 0)
		}
		inner.EncodeInto(e.cw[start:], e.padded[off:off+n])
		e.blocks = append(e.blocks, e.cw[start-n:start+rs.InnerParity])
		off += n
	}

	// Byte-interleave the codewords so that contiguous damage on the
	// medium spreads across blocks.
	e.stream = e.stream[:0]
	for c := 0; c < emblem.HeaderCopies; c++ {
		e.stream = hdr.AppendMarshal(e.stream)
	}
	e.stream = appendInterleave(e.stream, e.blocks)

	if corrupt != nil {
		corrupt(e.stream)
	}

	// Serialize to bits, pad with alternating filler to the full path.
	e.bits = appendStreamBits(e.bits[:0], e.stream, l.StreamBits())

	return render(e.bits, l, e.path), nil
}

// appendStreamBits appends stream followed by alternating 0/1 filler bits
// up to nbits total (MSB-first, the final partial byte zero-padded) — the
// exact byte sequence bitio.Writer produces for WriteBytes(stream) plus
// WriteBit(0),WriteBit(1),… (pinned by TestAppendStreamBitsDifferential).
func appendStreamBits(dst, stream []byte, nbits int) []byte {
	dst = append(dst, stream...)
	fill := nbits - len(stream)*8
	for fill >= 8 {
		dst = append(dst, 0x55) // 01010101, filler starts at a byte boundary
		fill -= 8
	}
	if fill > 0 {
		b := byte(0x55 >> (8 - fill))
		dst = append(dst, b<<(8-fill))
	}
	return dst
}

// interleave merges codewords round-robin by byte index; shorter blocks
// simply drop out of later rounds.
func interleave(blocks [][]byte) []byte {
	total := 0
	for _, b := range blocks {
		total += len(b)
	}
	return appendInterleave(make([]byte, 0, total), blocks)
}

// appendInterleave is interleave into a reused buffer.
func appendInterleave(dst []byte, blocks [][]byte) []byte {
	maxLen := 0
	for _, b := range blocks {
		if len(b) > maxLen {
			maxLen = len(b)
		}
	}
	for i := 0; i < maxLen; i++ {
		for _, b := range blocks {
			if i < len(b) {
				dst = append(dst, b[i])
			}
		}
	}
	return dst
}

// deinterleave reverses interleave given the codeword lengths. It also
// maps stream-level suspicion flags onto per-block erasure positions.
func deinterleave(stream []byte, suspect []bool, lens []int) (blocks [][]byte, erasures [][]int) {
	blocks = make([][]byte, len(lens))
	erasures = make([][]int, len(lens))
	idx := make([]int, len(lens))
	cwLens := make([]int, len(lens))
	maxLen := 0
	for i, n := range lens {
		cwLens[i] = n + rs.InnerParity
		blocks[i] = make([]byte, cwLens[i])
		if cwLens[i] > maxLen {
			maxLen = cwLens[i]
		}
	}
	pos := 0
	for i := 0; i < maxLen; i++ {
		for b := range blocks {
			if i < cwLens[b] {
				if pos < len(stream) {
					blocks[b][idx[b]] = stream[pos]
					if pos < len(suspect) && suspect[pos] {
						erasures[b] = append(erasures[b], idx[b])
					}
				} else {
					// Stream shorter than expected: mark as erasure.
					erasures[b] = append(erasures[b], idx[b])
				}
				idx[b]++
				pos++
			}
		}
	}
	return blocks, erasures
}

// deinterleaveInto is deinterleave through the decode scratch: codewords
// land back to back in s.cw (views in s.blocks) and the per-block erasure
// lists reuse s.erasures. Block b receives exactly one byte per
// round-robin round while the round index is inside its codeword, so the
// write index equals the round index — the same bytes deinterleave
// produces (pinned by TestDeinterleaveIntoMatches).
func deinterleaveInto(s *DecodeScratch, stream []byte, suspect []bool) (blocks [][]byte, erasures [][]int) {
	lens := s.lens
	total, maxLen := 0, 0
	for _, n := range lens {
		cwLen := n + rs.InnerParity
		total += cwLen
		if cwLen > maxLen {
			maxLen = cwLen
		}
	}
	if cap(s.cw) < total {
		s.cw = make([]byte, total)
	}
	s.cw = s.cw[:total]
	for i := range s.cw {
		s.cw[i] = 0
	}
	s.blocks = s.blocks[:0]
	off := 0
	for _, n := range lens {
		cwLen := n + rs.InnerParity
		s.blocks = append(s.blocks, s.cw[off:off+cwLen])
		off += cwLen
	}
	for len(s.erasures) < len(lens) {
		s.erasures = append(s.erasures, nil)
	}
	er := s.erasures[:len(lens)]
	for i := range er {
		er[i] = er[i][:0]
	}
	pos := 0
	for i := 0; i < maxLen; i++ {
		for b := range s.blocks {
			if i < len(s.blocks[b]) {
				if pos < len(stream) {
					s.blocks[b][i] = stream[pos]
					if pos < len(suspect) && suspect[pos] {
						er[b] = append(er[b], i)
					}
				} else {
					// Stream shorter than expected: mark as erasure.
					er[b] = append(er[b], i)
				}
				pos++
			}
		}
	}
	return s.blocks, er
}

// render paints the emblem: quiet zone, border ring, separator, corner
// marks and the Differential-Manchester data modules. path must be
// l.DataPath() (callers cache it across frames). Black data modules are
// written as pixel rows straight into Pix, and the bit stream is read
// inline — callers serialize exactly StreamBits bits, so there is no
// out-of-bits path. The image is byte-identical to the per-module
// FillRect reference formulation (pinned by TestEncodeFastRender).
func render(bits []byte, l emblem.Layout, path []emblem.Point) *raster.Gray {
	px := l.PxPerModule
	img := raster.New(l.ImageW(), l.ImageH())
	pix := img.Pix
	w := img.W

	// Border ring (between quiet zone and separator).
	q, b := emblem.QuietModules, emblem.BorderModules
	fw, fh := l.FullModulesW(), l.FullModulesH()
	img.FillRect(q*px, q*px, (fw-q)*px, (fh-q)*px, 0)           // outer black rect
	img.FillRect((q+b)*px, (q+b)*px, (fw-q-b)*px, (fh-q-b)*px, 255) // punch out interior
	m := emblem.MarginModules

	// Corner marks.
	corners := [4][2]int{
		{0, 0},
		{l.DataW - emblem.CornerBox, 0},
		{l.DataW - emblem.CornerBox, l.DataH - emblem.CornerBox},
		{0, l.DataH - emblem.CornerBox},
	}
	for c, origin := range corners {
		pat := emblem.CornerPattern(c)
		for y := 0; y < emblem.CornerBox; y++ {
			for x := 0; x < emblem.CornerBox; x++ {
				if pat[y][x] {
					blackModule(pix, w, (m+origin[0]+x)*px, (m+origin[1]+y)*px, px)
				}
			}
		}
	}

	// Data stream: differential Manchester along the serpentine path.
	level := 0
	nbits := l.StreamBits()
	for i := 0; i < nbits; i++ {
		bit := int(bits[i>>3]>>(7-i&7)) & 1
		half1 := 1 - level
		half2 := half1
		if bit == 1 {
			half2 = 1 - half1
		}
		level = half2
		if half1 == 1 {
			p := path[2*i]
			blackModule(pix, w, (m+p.X)*px, (m+p.Y)*px, px)
		}
		if half2 == 1 {
			p := path[2*i+1]
			blackModule(pix, w, (m+p.X)*px, (m+p.Y)*px, px)
		}
	}
	return img
}

// blackModule zeroes the px×px module whose top-left pixel is (x0, y0).
// Module coordinates are always in bounds by construction (the data
// region plus margins fits the image), so no clipping is needed.
func blackModule(pix []byte, w, x0, y0, px int) {
	base := y0*w + x0
	for r := 0; r < px; r++ {
		row := pix[base : base+px]
		for c := range row {
			row[c] = 0
		}
		base += w
	}
}

// ErrNoEmblem reports that no emblem geometry could be located in a scan.
var ErrNoEmblem = errors.New("mocoder: no emblem found in image")

// ErrUncorrectable reports damage beyond the inner code's capability.
var ErrUncorrectable = errors.New("mocoder: emblem damaged beyond inner-code correction")
