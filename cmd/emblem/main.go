// Command emblem encodes payloads into emblem images and decodes scanned
// emblems — and generates the paper's Figure 1 (a sample emblem).
//
// Usage:
//
//	emblem -demo figure1.png             # render a sample emblem
//	emblem -encode payload.bin -out e.png [-dataw N -datah N -px N]
//	emblem -decode scan.png [-dataw N -datah N -px N] -out payload.bin
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"microlonys/internal/emblem"
	"microlonys/internal/mocoder"
	"microlonys/raster"
)

func main() {
	demo := flag.String("demo", "", "write a Figure-1 style sample emblem PNG")
	encode := flag.String("encode", "", "payload file to encode")
	decode := flag.String("decode", "", "emblem PNG to decode")
	out := flag.String("out", "", "output file")
	dataW := flag.Int("dataw", 160, "data region width in modules")
	dataH := flag.Int("datah", 120, "data region height in modules")
	px := flag.Int("px", 4, "pixels per module")
	flag.Parse()

	l := emblem.Layout{DataW: *dataW, DataH: *dataH, PxPerModule: *px}
	if err := l.Validate(); err != nil {
		fatal("%v", err)
	}

	switch {
	case *demo != "":
		payload := make([]byte, mocoder.Capacity(l))
		rand.New(rand.NewSource(1)).Read(payload)
		hdr := emblem.Header{Kind: emblem.KindData, Total: 1}
		img, err := mocoder.Encode(payload, hdr, l)
		check(err)
		writePNG(*demo, img)
		fmt.Printf("sample emblem: %dx%d px, %d modules, %d byte capacity -> %s\n",
			img.W, img.H, l.DataW*l.DataH, mocoder.Capacity(l), *demo)

	case *encode != "":
		payload, err := os.ReadFile(*encode)
		check(err)
		if *out == "" {
			fatal("-out required")
		}
		if len(payload) > mocoder.Capacity(l) {
			fatal("payload %d bytes exceeds capacity %d", len(payload), mocoder.Capacity(l))
		}
		hdr := emblem.Header{Kind: emblem.KindData, Total: 1}
		img, err := mocoder.Encode(payload, hdr, l)
		check(err)
		writePNG(*out, img)
		fmt.Printf("encoded %d bytes into %s (%dx%d)\n", len(payload), *out, img.W, img.H)

	case *decode != "":
		f, err := os.Open(*decode)
		check(err)
		img, err := raster.DecodePNG(f)
		f.Close()
		check(err)
		payload, hdr, st, err := mocoder.Decode(img, l)
		check(err)
		fmt.Printf("decoded: kind=%s index=%d payload=%d bytes rotation=%d° corrected=%d bytes\n",
			hdr.Kind, hdr.Index, len(payload), st.Rotation, st.BytesCorrected)
		if *out != "" {
			check(os.WriteFile(*out, payload, 0o644))
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func writePNG(path string, img *raster.Gray) {
	f, err := os.Create(path)
	check(err)
	defer f.Close()
	check(img.EncodePNG(f))
}

func check(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "emblem: "+format+"\n", args...)
	os.Exit(1)
}
