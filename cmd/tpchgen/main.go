// Command tpchgen generates TPC-H-shaped SQL archives (the pg_dump-style
// text files the paper's experiments archive).
//
// Usage:
//
//	tpchgen -sf 0.0002 > dump.sql        # explicit scale factor
//	tpchgen -target 1200000 > dump.sql   # fit the paper's ≈1.2MB archive
package main

import (
	"flag"
	"fmt"
	"os"

	"microlonys/internal/sqldump"
	"microlonys/tpch"
)

func main() {
	sf := flag.Float64("sf", 0, "scale factor (TPC-H SF 1 = 6M lineitems)")
	target := flag.Int("target", 0, "fit scale factor to this dump size in bytes")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	var db *tpch.Database
	switch {
	case *target > 0:
		fitted, d := tpch.FitScaleFactor(*target, *seed, sqldump.Dump)
		db = d
		fmt.Fprintf(os.Stderr, "fitted scale factor %g\n", fitted)
	case *sf > 0:
		db = tpch.Generate(*sf, *seed)
	default:
		fmt.Fprintln(os.Stderr, "tpchgen: one of -sf or -target is required")
		os.Exit(2)
	}
	dump := sqldump.Dump(db)
	fmt.Fprintf(os.Stderr, "%d tables, %d rows, %d bytes\n", len(db.Tables), db.TotalRows(), len(dump))
	os.Stdout.Write(dump)
}
