package main

// The exit-code contract, pinned: 0 — restored clean and bit-exact;
// 2 — restored with losses (partial/salvage zero-fill); 1 — failure.
// Scripts and cron jobs branch on these, so they are a public API. The
// suite builds the real binary once and drives it through all three.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"microlonys/internal/mocoder"
	"microlonys/media"
)

// buildCLI compiles the command under test into dir and returns the
// binary path.
func buildCLI(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "microlonys")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building CLI: %v\n%s", err, out)
	}
	return bin
}

// runCLI executes the binary and returns its exit code and output.
func runCLI(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	var exit *exec.ExitError
	if !errors.As(err, &exit) {
		t.Fatalf("running CLI: %v\n%s", err, out)
	}
	return exit.ExitCode(), string(out)
}

func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	bin := buildCLI(t, dir)

	// A payload spanning several tiny-profile sheets, so a whole sheet
	// can be destroyed and the partial restore still has work to do.
	capacity := mocoder.Capacity(media.Tiny().Layout)
	var payload bytes.Buffer
	for i := 0; payload.Len() < 40*capacity; i++ {
		fmt.Fprintf(&payload, "INSERT INTO lineitem VALUES (%d, 155190, 7706, 17, 21168.23, '1996-03-13');\n", i)
	}
	input := filepath.Join(dir, "payload.sql")
	if err := os.WriteFile(input, payload.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	t.Run("0-clean", func(t *testing.T) {
		code, out := runCLI(t, bin, "-in", input, "-profile", "tiny")
		if code != 0 {
			t.Fatalf("exit %d, want 0\n%s", code, out)
		}
		if !bytes.Contains([]byte(out), []byte("RESTORED BIT-EXACT")) {
			t.Fatalf("clean run did not report bit-exactness:\n%s", out)
		}
	})

	t.Run("2-losses", func(t *testing.T) {
		// -raw keeps the repetitive payload from compressing down to a
		// single sheet: the volume must span sheets for one to be lost.
		code, out := runCLI(t, bin, "-in", input, "-profile", "tiny", "-raw",
			"-sheet-frames", "21", "-catalog", "-partial", "-destroy-sheet", "1")
		if code != 2 {
			t.Fatalf("exit %d, want 2 (restored with losses)\n%s", code, out)
		}
		if !bytes.Contains([]byte(out), []byte("restored with losses")) {
			t.Fatalf("lossy run did not report its losses:\n%s", out)
		}
	})

	t.Run("1-failure", func(t *testing.T) {
		code, out := runCLI(t, bin, "-in", filepath.Join(dir, "does-not-exist"), "-profile", "tiny")
		if code != 1 {
			t.Fatalf("exit %d, want 1\n%s", code, out)
		}
		code, _ = runCLI(t, bin, "-in", input, "-profile", "no-such-medium")
		if code != 1 {
			t.Fatalf("unknown profile: exit %d, want 1", code)
		}
		code, _ = runCLI(t, bin)
		if code != 1 {
			t.Fatalf("missing -in: exit %d, want 1", code)
		}
	})
}
