// Command microlonys archives a file to simulated analog media and
// restores it back — the end-to-end ULE pipeline from the command line.
//
// Usage:
//
//	microlonys -in dump.sql [-profile paper|microfilm|cinema]
//	           [-mode native|dynarisc|nested] [-raw] [-depth N] [-destroy N]
//	           [-workers N] [-frames out/] [-bootstrap bootstrap.txt]
//
// The tool archives the input, optionally destroys N frames, restores
// through the selected mode and verifies bit-exactness, printing the
// manifest and capacity figures along the way.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"microlonys"
	"microlonys/media"
)

func main() {
	in := flag.String("in", "", "input file to archive (required)")
	profile := flag.String("profile", "paper", "media profile: paper, microfilm, cinema")
	mode := flag.String("mode", "native", "restore mode: native, dynarisc, nested")
	raw := flag.Bool("raw", false, "archive without DBCoder compression")
	depth := flag.Int("depth", 0, "DBCoder match-finder depth: lower is faster, higher packs denser (0 = default)")
	destroy := flag.Int("destroy", 0, "destroy N random frames before restoring")
	framesDir := flag.String("frames", "", "write frame PNGs to this directory")
	bootOut := flag.String("bootstrap", "", "write the Bootstrap document to this file")
	seed := flag.Int64("seed", 1, "seed for frame destruction")
	workers := flag.Int("workers", 0, "frame pipeline workers (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	check(err)

	var prof media.Profile
	switch *profile {
	case "paper":
		prof = media.Paper()
	case "microfilm":
		prof = media.Microfilm()
	case "cinema":
		prof = media.CinemaFilm()
	default:
		fatal("unknown profile %q", *profile)
	}

	var m microlonys.Mode
	switch *mode {
	case "native":
		m = microlonys.RestoreNative
	case "dynarisc":
		m = microlonys.RestoreDynaRisc
	case "nested":
		m = microlonys.RestoreNested
	default:
		fatal("unknown mode %q", *mode)
	}

	opts := microlonys.DefaultOptions(prof)
	opts.Compress = !*raw
	opts.CompressDepth = *depth
	opts.Workers = *workers

	fmt.Printf("archiving %s (%d bytes) to %s...\n", *in, len(data), prof.Name)
	t0 := time.Now()
	arch, err := microlonys.Archive(data, opts)
	check(err)
	encodeTime := time.Since(t0)

	man := arch.Manifest
	fmt.Printf("  raw %d B -> stream %d B (ratio %.2fx)\n", man.RawLen, man.StreamLen,
		float64(man.RawLen)/float64(max(man.StreamLen, 1)))
	fmt.Printf("  %d data + %d system + %d parity emblems (%d frames, %d groups)\n",
		man.DataEmblems, man.SystemEmblems, man.ParityEmblems, man.TotalFrames, man.Groups)
	fmt.Printf("  frame capacity %d B; encode time %v\n", prof.FrameCapacity(), encodeTime)

	if *bootOut != "" {
		check(os.WriteFile(*bootOut, []byte(arch.BootstrapText), 0o644))
		fmt.Printf("  bootstrap -> %s (%d bytes)\n", *bootOut, len(arch.BootstrapText))
	}
	if *framesDir != "" {
		check(os.MkdirAll(*framesDir, 0o755))
		for i := 0; i < arch.Medium.FrameCount(); i++ {
			img, err := arch.Medium.ScanFrame(i)
			check(err)
			f, err := os.Create(filepath.Join(*framesDir, fmt.Sprintf("frame%03d.png", i)))
			check(err)
			check(img.EncodePNG(f))
			f.Close()
		}
		fmt.Printf("  %d frame scans -> %s/\n", arch.Medium.FrameCount(), *framesDir)
	}

	if *destroy > 0 {
		rng := rand.New(rand.NewSource(*seed))
		for i := 0; i < *destroy; i++ {
			idx := rng.Intn(arch.Medium.FrameCount())
			check(arch.Medium.Destroy(idx))
			fmt.Printf("  destroyed frame %d\n", idx)
		}
	}

	fmt.Printf("restoring (mode %s)...\n", m)
	t0 = time.Now()
	got, st, err := microlonys.RestoreWith(arch.Medium, arch.BootstrapText,
		microlonys.RestoreOptions{Mode: m, Workers: *workers})
	check(err)
	fmt.Printf("  %d frames scanned, %d failed, %d groups recovered, %d bytes corrected\n",
		st.FramesScanned, st.FramesFailed, st.GroupsRecovered, st.BytesCorrected)
	fmt.Printf("  decode time %v\n", time.Since(t0))

	if bytes.Equal(got, data) {
		fmt.Println("RESTORED BIT-EXACT")
	} else {
		fatal("restored data differs from input")
	}
}

func check(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "microlonys: "+format+"\n", args...)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
