// Command microlonys archives a file to simulated analog media and
// restores it back — the end-to-end ULE pipeline from the command line.
//
// Usage:
//
//	microlonys -in dump.sql [-profile paper|microfilm|cinema|tiny]
//	           [-mode native|dynarisc|nested] [-raw] [-depth N]
//	           [-sheet-frames N] [-catalog] [-index]
//	           [-range OFF:LEN] [-table NAME] [-list-tables]
//	           [-destroy N] [-destroy-sheet S]
//	           [-partial] [-salvage] [-shuffle] [-withhold-sheet S]
//	           [-dup-sheet S] [-workers N] [-fastsim]
//	           [-frames out/] [-sheets out/]
//	           [-out file] [-bootstrap bootstrap.txt]
//
// The tool archives the input (`-in -` streams stdin), optionally
// destroys N random frames and/or a whole sheet, restores through the
// selected mode and verifies bit-exactness, printing the manifest,
// per-sheet statistics and capacity figures along the way. With
// `-sheet-frames N` the archive is sharded across media sheets of N
// frames each — an outer-code group never straddles a sheet — and
// `-sheets dir` writes each sheet's frame scans to its own subdirectory.
// `-out file` streams the restored archive to a file (`-` for stdout);
// `-partial` keeps restoring past lost carriers, zero-filling and
// reporting what the outer code could not bring back.
//
// `-index` reserves one frame per sheet for a selective-restore index
// emblem mapping archive bytes to volume extents; `-range OFF:LEN`,
// `-table NAME` and `-list-tables` then answer random-access queries by
// scanning only the frames the query touches — the tool prints how many
// frames were skipped and verifies the bytes against the corresponding
// slice of the input.
//
// `-catalog` reserves one frame per sheet for a self-describing catalog
// emblem (archive identity, sheet inventory, per-group checksums, a
// compressed Bootstrap replica when it fits). `-salvage` then restores
// through the disaster path: the sheets are handed over as an unordered
// bag with NO bootstrap text — optionally shuffled (`-shuffle`), with a
// sheet withheld (`-withhold-sheet S`) or duplicated (`-dup-sheet S`) —
// and the salvage engine identifies, orders and dedupes them from the
// catalog frames (or a frame-header vote) before the best-effort
// restore. The SalvageReport ledger is printed in full.
//
// Exit codes: 0 — restored clean (bit-exact where verifiable);
// 2 — restored with losses (partial/salvage restores that zero-filled
// bytes the outer code could not bring back); 1 — failure (bad
// arguments, I/O errors, unrecoverable restores, or a restore whose
// bytes differ from the input). Malformed flags exit 2 via package flag.
// The regression suite in exitcode_test.go pins all three.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"microlonys"
	"microlonys/media"
)

func main() {
	in := flag.String("in", "", "input file to archive (required; - reads stdin)")
	profile := flag.String("profile", "paper", "media profile: paper, microfilm, cinema, tiny (fast dev medium)")
	mode := flag.String("mode", "native", "restore mode: native, dynarisc, nested")
	raw := flag.Bool("raw", false, "archive without DBCoder compression")
	depth := flag.Int("depth", 0, "DBCoder match-finder depth: lower is faster, higher packs denser (0 = default)")
	sheetFrames := flag.Int("sheet-frames", 0, "frames per media sheet; 0 = one unbounded sheet")
	catalog := flag.Bool("catalog", false, "reserve one frame per sheet for a self-describing catalog emblem")
	index := flag.Bool("index", false, "reserve one frame per sheet for a selective-restore index emblem")
	rangeQ := flag.String("range", "", "restore only bytes OFF:LEN through the index (implies -index)")
	tableQ := flag.String("table", "", "restore only this SQL table through the index (implies -index)")
	listTables := flag.Bool("list-tables", false, "print the index's named sections and exit (implies -index)")
	destroy := flag.Int("destroy", 0, "destroy N random frames before restoring")
	destroySheet := flag.Int("destroy-sheet", -1, "destroy this entire sheet before restoring (carrier loss)")
	partial := flag.Bool("partial", false, "keep restoring past lost carriers (zero-fill + report)")
	salvage := flag.Bool("salvage", false, "restore through the salvage path: unordered sheet bag, no bootstrap text")
	shuffle := flag.Bool("shuffle", false, "shuffle the salvage sheet bag (requires -salvage)")
	withholdSheet := flag.Int("withhold-sheet", -1, "withhold this sheet from the salvage bag (requires -salvage)")
	dupSheet := flag.Int("dup-sheet", -1, "present this sheet twice in the salvage bag (requires -salvage)")
	framesDir := flag.String("frames", "", "write frame PNGs to this directory")
	sheetsDir := flag.String("sheets", "", "write per-sheet frame PNGs to sheetNN/ under this directory")
	outPath := flag.String("out", "", "stream the restored archive to this file (- for stdout)")
	bootOut := flag.String("bootstrap", "", "write the Bootstrap document to this file")
	seed := flag.Int64("seed", 1, "seed for frame destruction")
	workers := flag.Int("workers", 0, "frame pipeline workers (0 = GOMAXPROCS, 1 = serial)")
	fastsim := flag.Bool("fastsim", false, "scan through the fast-sim scanner approximation (statistically equivalent, not byte-identical)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		fatal("missing -in")
	}

	var prof media.Profile
	switch *profile {
	case "paper":
		prof = media.Paper()
	case "microfilm":
		prof = media.Microfilm()
	case "cinema":
		prof = media.CinemaFilm()
	case "tiny":
		prof = media.Tiny()
	default:
		fatal("unknown profile %q", *profile)
	}
	prof.Scanner.FastSim = *fastsim

	var m microlonys.Mode
	switch *mode {
	case "native":
		m = microlonys.RestoreNative
	case "dynarisc":
		m = microlonys.RestoreDynaRisc
	case "nested":
		m = microlonys.RestoreNested
	default:
		fatal("unknown mode %q", *mode)
	}

	if *salvage && !*catalog {
		// The salvage path works without catalogs (header-vote fallback),
		// but the CLI pairs them so the demo exercises the full engine.
		fmt.Println("note: -salvage implies -catalog (self-describing sheets)")
		*catalog = true
	}
	selective := *rangeQ != "" || *tableQ != "" || *listTables
	if selective && !*index {
		fmt.Println("note: selective query implies -index (indexed volume)")
		*index = true
	}
	opts := microlonys.DefaultOptions(prof)
	opts.Compress = !*raw
	opts.CompressDepth = *depth
	opts.Workers = *workers
	opts.SheetFrames = *sheetFrames
	opts.Catalog = *catalog
	opts.Index = *index

	// The original bytes are kept only to verify bit-exactness after the
	// round trip; stdin streams through the pipeline unverified.
	var source io.Reader
	var data []byte
	if *in == "-" {
		source = os.Stdin
		fmt.Printf("archiving stdin to %s...\n", prof.Name)
	} else {
		var err error
		data, err = os.ReadFile(*in)
		check(err)
		source = bytes.NewReader(data)
		fmt.Printf("archiving %s (%d bytes) to %s...\n", *in, len(data), prof.Name)
	}

	t0 := time.Now()
	arch, err := microlonys.ArchiveReader(source, opts)
	check(err)
	encodeTime := time.Since(t0)

	man := arch.Manifest
	fmt.Printf("  raw %d B -> stream %d B (ratio %.2fx)\n", man.RawLen, man.StreamLen,
		float64(man.RawLen)/float64(max(man.StreamLen, 1)))
	fmt.Printf("  %d data + %d system + %d parity emblems (%d frames, %d groups, %d sheets)\n",
		man.DataEmblems, man.SystemEmblems, man.ParityEmblems, man.TotalFrames, man.Groups, man.Sheets)
	fmt.Printf("  frame capacity %d B; encode time %v\n", prof.FrameCapacity(), encodeTime)

	if *bootOut != "" {
		check(os.WriteFile(*bootOut, []byte(arch.BootstrapText), 0o644))
		fmt.Printf("  bootstrap -> %s (%d bytes)\n", *bootOut, len(arch.BootstrapText))
	}
	if *framesDir != "" {
		check(os.MkdirAll(*framesDir, 0o755))
		for i := 0; i < arch.Volume.FrameCount(); i++ {
			img, err := arch.Volume.ScanFrame(i)
			check(err)
			writePNG(filepath.Join(*framesDir, fmt.Sprintf("frame%03d.png", i)), img)
		}
		fmt.Printf("  %d frame scans -> %s/\n", arch.Volume.FrameCount(), *framesDir)
	}
	if *sheetsDir != "" {
		for s := 0; s < arch.Volume.Sheets(); s++ {
			sheet, err := arch.Volume.Sheet(s)
			check(err)
			dir := filepath.Join(*sheetsDir, fmt.Sprintf("sheet%02d", s))
			check(os.MkdirAll(dir, 0o755))
			for i := 0; i < sheet.FrameCount(); i++ {
				img, err := sheet.ScanFrame(i)
				check(err)
				writePNG(filepath.Join(dir, fmt.Sprintf("frame%03d.png", i)), img)
			}
		}
		fmt.Printf("  %d sheets -> %s/sheetNN/\n", arch.Volume.Sheets(), *sheetsDir)
	}

	if *destroySheet >= 0 {
		check(arch.Volume.DestroySheet(*destroySheet))
		fmt.Printf("  destroyed sheet %d entirely (simulated carrier loss)\n", *destroySheet)
	}
	if *destroy > 0 {
		rng := rand.New(rand.NewSource(*seed))
		for i := 0; i < *destroy; i++ {
			idx := rng.Intn(arch.Volume.FrameCount())
			s, j, err := arch.Volume.Locate(idx)
			check(err)
			check(arch.Volume.Destroy(s, j))
			fmt.Printf("  destroyed frame %d (sheet %d #%d)\n", idx, s, j)
		}
	}

	if selective {
		runSelective(arch, m, *workers, *partial, *rangeQ, *tableQ, *listTables, *outPath, data)
		return
	}

	// Restore: stream to -out when given, otherwise into memory for the
	// bit-exactness check. -salvage swaps in the disaster path: the
	// sheets go over as an unordered bag with no bootstrap text.
	var got []byte
	var st *microlonys.RestoreStats
	t0 = time.Now()
	if *salvage {
		bag := salvageBag(arch.Volume, *withholdSheet, *dupSheet, *shuffle, *seed)
		so := microlonys.SalvageOptions{Mode: m, Workers: *workers}
		fmt.Printf("salvaging %d sheets (mode %s, no bootstrap text)...\n", len(bag), m)
		var rep *microlonys.SalvageReport
		switch {
		case *outPath == "-":
			rep, err = microlonys.SalvageTo(os.Stdout, bag, so)
			check(err)
		case *outPath != "":
			f, ferr := os.Create(*outPath)
			check(ferr)
			rep, err = microlonys.SalvageTo(f, bag, so)
			check(err)
			check(f.Close())
			fmt.Printf("  salvaged archive -> %s\n", *outPath)
		default:
			got, rep, err = microlonys.Salvage(bag, so)
			check(err)
		}
		printSalvageReport(rep)
		st = &rep.Stats
	} else {
		fmt.Printf("restoring (mode %s)...\n", m)
		ro := microlonys.RestoreOptions{Mode: m, Workers: *workers, Partial: *partial}
		switch {
		case *outPath == "-":
			st, err = microlonys.RestoreTo(os.Stdout, arch.Volume, arch.BootstrapText, ro)
			check(err)
		case *outPath != "":
			f, ferr := os.Create(*outPath)
			check(ferr)
			st, err = microlonys.RestoreTo(f, arch.Volume, arch.BootstrapText, ro)
			check(err)
			check(f.Close())
			fmt.Printf("  restored archive -> %s\n", *outPath)
		default:
			got, st, err = microlonys.RestoreVolume(arch.Volume, arch.BootstrapText, ro)
			check(err)
		}
	}
	fmt.Printf("  %d frames scanned, %d failed, %d groups recovered, %d bytes corrected\n",
		st.FramesScanned, st.FramesFailed, st.GroupsRecovered, st.BytesCorrected)
	if st.GroupsLost > 0 || st.FramesLost > 0 {
		fmt.Printf("  LOST: %d groups, %d unidentifiable frames, %d bytes zero-filled\n",
			st.GroupsLost, st.FramesLost, st.BytesLost)
	}
	for s, sh := range st.Sheets {
		if sh.FramesFailed > 0 || sh.GroupsRecovered > 0 || sh.GroupsLost > 0 {
			fmt.Printf("  sheet %d: %d frames, %d failed, %d lost; %d groups, %d recovered, %d lost\n",
				s, sh.Frames, sh.FramesFailed, sh.FramesLost, sh.Groups, sh.GroupsRecovered, sh.GroupsLost)
		}
	}
	fmt.Printf("  decode time %v\n", time.Since(t0))

	switch {
	case got == nil:
		fmt.Println("restored (streaming; no in-memory copy to verify)")
		if st.BytesLost > 0 {
			os.Exit(2)
		}
	case data == nil:
		fmt.Println("restored (stdin input; nothing to verify against)")
		if st.BytesLost > 0 {
			os.Exit(2)
		}
	case bytes.Equal(got, data):
		fmt.Println("RESTORED BIT-EXACT")
	case (*partial || *salvage) && st.BytesLost > 0:
		fmt.Printf("restored with losses (%d of %d bytes zero-filled)\n", st.BytesLost, len(data))
		os.Exit(2)
	default:
		fatal("restored data differs from input")
	}
}

// runSelective answers a `-range`, `-table` or `-list-tables` query
// through the volume's selective-restore index, printing how much of the
// volume the query touched and verifying the bytes against the input.
func runSelective(arch *microlonys.Archived, m microlonys.Mode, workers int, partial bool, rangeQ, tableQ string, listTables bool, outPath string, data []byte) {
	ro := microlonys.RestoreOptions{Mode: m, Workers: workers, Partial: partial}

	if listTables {
		x, st, err := microlonys.ListIndex(arch.Volume, arch.BootstrapText, ro)
		check(err)
		fmt.Printf("index: archive %016x, raw %d B, stream %d B, %d restart blocks\n",
			x.ArchiveID, x.RawLen, x.StreamLen, len(x.Blocks))
		for _, sec := range x.Sections {
			kind := "table "
			if sec.Kind == microlonys.SectionColumn {
				kind = "column"
			}
			fmt.Printf("  %s %-24s off %10d  len %10d\n", kind, sec.Name, sec.Off, sec.Len)
		}
		fmt.Printf("  (%d frames scanned, %d skipped)\n", st.FramesScanned, st.FramesSkipped)
		return
	}

	var got []byte
	var st *microlonys.RestoreStats
	var err error
	var want []byte // expected bytes, when verifiable
	if rangeQ != "" {
		var off, length int
		if _, perr := fmt.Sscanf(rangeQ, "%d:%d", &off, &length); perr != nil {
			fatal("bad -range %q (want OFF:LEN)", rangeQ)
		}
		fmt.Printf("restoring range %d:%d (mode %s)...\n", off, length, m)
		got, st, err = microlonys.RestoreRange(arch.Volume, arch.BootstrapText, off, length, ro)
		check(err)
		if data != nil && off+length <= len(data) {
			want = data[off : off+length]
		}
	} else {
		fmt.Printf("restoring table %q (mode %s)...\n", tableQ, m)
		got, st, err = microlonys.RestoreTable(arch.Volume, arch.BootstrapText, tableQ, ro)
		check(err)
	}

	total := arch.Volume.FrameCount()
	fmt.Printf("  %d bytes restored; %d of %d frames scanned (%.1f%%), %d skipped, %d groups decoded\n",
		len(got), st.FramesScanned, total, 100*float64(st.FramesScanned)/float64(max(total, 1)),
		st.FramesSkipped, st.GroupsDecoded)
	if st.IndexFallbacks > 0 {
		fmt.Printf("  fell back to a full restore (%d fallback(s): no usable index)\n", st.IndexFallbacks)
	}

	switch {
	case outPath == "-":
		_, werr := os.Stdout.Write(got)
		check(werr)
	case outPath != "":
		check(os.WriteFile(outPath, got, 0o644))
		fmt.Printf("  restored bytes -> %s\n", outPath)
	}

	switch {
	case data == nil:
		fmt.Println("restored (stdin input; nothing to verify against)")
	case want != nil && bytes.Equal(got, want):
		fmt.Println("RESTORED BIT-EXACT")
	case want == nil && len(got) > 0 && bytes.Contains(data, got):
		// Table queries: the restored region must be a contiguous slice of
		// the input.
		fmt.Println("RESTORED BIT-EXACT")
	case want == nil && len(got) == 0:
		fmt.Println("restored empty section")
	default:
		fatal("restored bytes differ from input")
	}
}

// salvageBag pulls the volume's sheets into the bag the salvage engine
// receives: optionally one sheet withheld, one presented twice, and the
// whole bag shuffled (seeded, so runs reproduce).
func salvageBag(vol *media.Volume, withhold, dup int, shuffle bool, seed int64) []*media.Medium {
	var bag []*media.Medium
	for s := 0; s < vol.Sheets(); s++ {
		sheet, err := vol.Sheet(s)
		check(err)
		if s == withhold {
			fmt.Printf("  withheld sheet %d from the bag\n", s)
			continue
		}
		bag = append(bag, sheet)
		if s == dup {
			fmt.Printf("  presented sheet %d twice\n", s)
			bag = append(bag, sheet.Clone())
		}
	}
	if shuffle {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(bag), func(i, j int) { bag[i], bag[j] = bag[j], bag[i] })
		fmt.Printf("  shuffled the bag (%d sheets)\n", len(bag))
	}
	return bag
}

// printSalvageReport renders the salvage ledger: what the engine
// identified, how, and what it could not bring back.
func printSalvageReport(rep *microlonys.SalvageReport) {
	fmt.Printf("  salvage ledger:\n")
	fmt.Printf("    archive id %016x; %d of %d sheets identified (%d presented)\n",
		rep.ArchiveID, len(rep.SheetsIdentified), rep.SheetCount, rep.SheetsPresented)
	switch {
	case rep.CatalogUsed:
		fmt.Printf("    identity from %d catalog frames", rep.CatalogFrames)
		if rep.BootstrapFromCatalog {
			fmt.Printf(" (bootstrap replayed from the catalog replica)")
		}
		fmt.Println()
	default:
		fmt.Printf("    identity from frame-header vote (no catalog survived)\n")
	}
	if rep.SheetsDuplicate > 0 {
		fmt.Printf("    deduped %d redundant sheet cop(ies)\n", rep.SheetsDuplicate)
	}
	if rep.SheetsUnidentified > 0 {
		fmt.Printf("    %d sheet(s) unidentifiable\n", rep.SheetsUnidentified)
	}
	if len(rep.SheetsMissing) > 0 {
		fmt.Printf("    MISSING sheets %v (inventoried by the catalog)\n", rep.SheetsMissing)
	}
	if rep.Complete {
		fmt.Printf("    complete: every group recovered and verified\n")
	}
}

func writePNG(path string, img interface{ EncodePNG(w io.Writer) error }) {
	f, err := os.Create(path)
	check(err)
	check(img.EncodePNG(f))
	check(f.Close())
}

func check(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "microlonys: "+format+"\n", args...)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
