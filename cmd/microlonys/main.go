// Command microlonys archives a file to simulated analog media and
// restores it back — the end-to-end ULE pipeline from the command line.
//
// Usage:
//
//	microlonys -in dump.sql [-profile paper|microfilm|cinema]
//	           [-mode native|dynarisc|nested] [-raw] [-depth N]
//	           [-sheet-frames N] [-destroy N] [-destroy-sheet S] [-partial]
//	           [-workers N] [-fastsim] [-frames out/] [-sheets out/]
//	           [-out file] [-bootstrap bootstrap.txt]
//
// The tool archives the input (`-in -` streams stdin), optionally
// destroys N random frames and/or a whole sheet, restores through the
// selected mode and verifies bit-exactness, printing the manifest,
// per-sheet statistics and capacity figures along the way. With
// `-sheet-frames N` the archive is sharded across media sheets of N
// frames each — an outer-code group never straddles a sheet — and
// `-sheets dir` writes each sheet's frame scans to its own subdirectory.
// `-out file` streams the restored archive to a file (`-` for stdout);
// `-partial` keeps restoring past lost carriers, zero-filling and
// reporting what the outer code could not bring back.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"microlonys"
	"microlonys/media"
)

func main() {
	in := flag.String("in", "", "input file to archive (required; - reads stdin)")
	profile := flag.String("profile", "paper", "media profile: paper, microfilm, cinema")
	mode := flag.String("mode", "native", "restore mode: native, dynarisc, nested")
	raw := flag.Bool("raw", false, "archive without DBCoder compression")
	depth := flag.Int("depth", 0, "DBCoder match-finder depth: lower is faster, higher packs denser (0 = default)")
	sheetFrames := flag.Int("sheet-frames", 0, "frames per media sheet; 0 = one unbounded sheet")
	destroy := flag.Int("destroy", 0, "destroy N random frames before restoring")
	destroySheet := flag.Int("destroy-sheet", -1, "destroy this entire sheet before restoring (carrier loss)")
	partial := flag.Bool("partial", false, "keep restoring past lost carriers (zero-fill + report)")
	framesDir := flag.String("frames", "", "write frame PNGs to this directory")
	sheetsDir := flag.String("sheets", "", "write per-sheet frame PNGs to sheetNN/ under this directory")
	outPath := flag.String("out", "", "stream the restored archive to this file (- for stdout)")
	bootOut := flag.String("bootstrap", "", "write the Bootstrap document to this file")
	seed := flag.Int64("seed", 1, "seed for frame destruction")
	workers := flag.Int("workers", 0, "frame pipeline workers (0 = GOMAXPROCS, 1 = serial)")
	fastsim := flag.Bool("fastsim", false, "scan through the fast-sim scanner approximation (statistically equivalent, not byte-identical)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	var prof media.Profile
	switch *profile {
	case "paper":
		prof = media.Paper()
	case "microfilm":
		prof = media.Microfilm()
	case "cinema":
		prof = media.CinemaFilm()
	default:
		fatal("unknown profile %q", *profile)
	}
	prof.Scanner.FastSim = *fastsim

	var m microlonys.Mode
	switch *mode {
	case "native":
		m = microlonys.RestoreNative
	case "dynarisc":
		m = microlonys.RestoreDynaRisc
	case "nested":
		m = microlonys.RestoreNested
	default:
		fatal("unknown mode %q", *mode)
	}

	opts := microlonys.DefaultOptions(prof)
	opts.Compress = !*raw
	opts.CompressDepth = *depth
	opts.Workers = *workers
	opts.SheetFrames = *sheetFrames

	// The original bytes are kept only to verify bit-exactness after the
	// round trip; stdin streams through the pipeline unverified.
	var source io.Reader
	var data []byte
	if *in == "-" {
		source = os.Stdin
		fmt.Printf("archiving stdin to %s...\n", prof.Name)
	} else {
		var err error
		data, err = os.ReadFile(*in)
		check(err)
		source = bytes.NewReader(data)
		fmt.Printf("archiving %s (%d bytes) to %s...\n", *in, len(data), prof.Name)
	}

	t0 := time.Now()
	arch, err := microlonys.ArchiveReader(source, opts)
	check(err)
	encodeTime := time.Since(t0)

	man := arch.Manifest
	fmt.Printf("  raw %d B -> stream %d B (ratio %.2fx)\n", man.RawLen, man.StreamLen,
		float64(man.RawLen)/float64(max(man.StreamLen, 1)))
	fmt.Printf("  %d data + %d system + %d parity emblems (%d frames, %d groups, %d sheets)\n",
		man.DataEmblems, man.SystemEmblems, man.ParityEmblems, man.TotalFrames, man.Groups, man.Sheets)
	fmt.Printf("  frame capacity %d B; encode time %v\n", prof.FrameCapacity(), encodeTime)

	if *bootOut != "" {
		check(os.WriteFile(*bootOut, []byte(arch.BootstrapText), 0o644))
		fmt.Printf("  bootstrap -> %s (%d bytes)\n", *bootOut, len(arch.BootstrapText))
	}
	if *framesDir != "" {
		check(os.MkdirAll(*framesDir, 0o755))
		for i := 0; i < arch.Volume.FrameCount(); i++ {
			img, err := arch.Volume.ScanFrame(i)
			check(err)
			writePNG(filepath.Join(*framesDir, fmt.Sprintf("frame%03d.png", i)), img)
		}
		fmt.Printf("  %d frame scans -> %s/\n", arch.Volume.FrameCount(), *framesDir)
	}
	if *sheetsDir != "" {
		for s := 0; s < arch.Volume.Sheets(); s++ {
			sheet, err := arch.Volume.Sheet(s)
			check(err)
			dir := filepath.Join(*sheetsDir, fmt.Sprintf("sheet%02d", s))
			check(os.MkdirAll(dir, 0o755))
			for i := 0; i < sheet.FrameCount(); i++ {
				img, err := sheet.ScanFrame(i)
				check(err)
				writePNG(filepath.Join(dir, fmt.Sprintf("frame%03d.png", i)), img)
			}
		}
		fmt.Printf("  %d sheets -> %s/sheetNN/\n", arch.Volume.Sheets(), *sheetsDir)
	}

	if *destroySheet >= 0 {
		check(arch.Volume.DestroySheet(*destroySheet))
		fmt.Printf("  destroyed sheet %d entirely (simulated carrier loss)\n", *destroySheet)
	}
	if *destroy > 0 {
		rng := rand.New(rand.NewSource(*seed))
		for i := 0; i < *destroy; i++ {
			idx := rng.Intn(arch.Volume.FrameCount())
			s, j, err := arch.Volume.Locate(idx)
			check(err)
			check(arch.Volume.Destroy(s, j))
			fmt.Printf("  destroyed frame %d (sheet %d #%d)\n", idx, s, j)
		}
	}

	// Restore: stream to -out when given, otherwise into memory for the
	// bit-exactness check.
	fmt.Printf("restoring (mode %s)...\n", m)
	ro := microlonys.RestoreOptions{Mode: m, Workers: *workers, Partial: *partial}
	t0 = time.Now()
	var got []byte
	var st *microlonys.RestoreStats
	switch {
	case *outPath == "-":
		st, err = microlonys.RestoreTo(os.Stdout, arch.Volume, arch.BootstrapText, ro)
		check(err)
	case *outPath != "":
		f, ferr := os.Create(*outPath)
		check(ferr)
		st, err = microlonys.RestoreTo(f, arch.Volume, arch.BootstrapText, ro)
		check(err)
		check(f.Close())
		fmt.Printf("  restored archive -> %s\n", *outPath)
	default:
		got, st, err = microlonys.RestoreVolume(arch.Volume, arch.BootstrapText, ro)
		check(err)
	}
	fmt.Printf("  %d frames scanned, %d failed, %d groups recovered, %d bytes corrected\n",
		st.FramesScanned, st.FramesFailed, st.GroupsRecovered, st.BytesCorrected)
	if st.GroupsLost > 0 || st.FramesLost > 0 {
		fmt.Printf("  LOST: %d groups, %d unidentifiable frames, %d bytes zero-filled\n",
			st.GroupsLost, st.FramesLost, st.BytesLost)
	}
	for s, sh := range st.Sheets {
		if sh.FramesFailed > 0 || sh.GroupsRecovered > 0 || sh.GroupsLost > 0 {
			fmt.Printf("  sheet %d: %d frames, %d failed, %d lost; %d groups, %d recovered, %d lost\n",
				s, sh.Frames, sh.FramesFailed, sh.FramesLost, sh.Groups, sh.GroupsRecovered, sh.GroupsLost)
		}
	}
	fmt.Printf("  decode time %v\n", time.Since(t0))

	switch {
	case got == nil:
		fmt.Println("restored (streaming; no in-memory copy to verify)")
	case data == nil:
		fmt.Println("restored (stdin input; nothing to verify against)")
	case bytes.Equal(got, data):
		fmt.Println("RESTORED BIT-EXACT")
	case *partial && st.BytesLost > 0:
		fmt.Printf("restored with losses (%d of %d bytes zero-filled)\n", st.BytesLost, len(data))
	default:
		fatal("restored data differs from input")
	}
}

func writePNG(path string, img interface{ EncodePNG(w io.Writer) error }) {
	f, err := os.Create(path)
	check(err)
	check(img.EncodePNG(f))
	check(f.Close())
}

func check(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "microlonys: "+format+"\n", args...)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
