// Command campaign runs the statistical damage-torture harness: randomized
// recovery trials swept along damage axes across media profiles, emitting
// recovery-probability curves as JSON — and, in diff mode, gating a fresh
// run against the committed CAMPAIGN.json baseline.
//
// Regenerate the committed baseline (bit-for-bit reproducible):
//
//	campaign -out CAMPAIGN.json
//
// CI regression smoke (small trial count inside a tolerance band):
//
//	campaign -trials 2 -diff CAMPAIGN.json -tol 0.15
//
// Flags select the sweep axes (-axes severity,loss), profiles
// (-profiles paper-small,dnasim), trial count, seed, corpus size and
// worker fan-out; the same seed and sweep always produce the same JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"microlonys/internal/campaign"
)

func main() {
	profiles := flag.String("profiles", "", "comma-separated profiles to sweep (default "+
		strings.Join(campaign.DefaultProfiles(), ",")+"; available "+strings.Join(campaign.ProfileNames(), ",")+")")
	axes := flag.String("axes", "", "comma-separated damage axes (default "+strings.Join(campaign.DefaultAxes(), ",")+")")
	trials := flag.Int("trials", 0, "randomized trials per axis point (default 8)")
	seed := flag.Int64("seed", 0, "campaign seed; every trial derives from it (default 1)")
	corpus := flag.Int("corpus", 0, "corpus bytes to archive per profile (default 16384)")
	workers := flag.Int("workers", 0, "trial-level parallelism (0 = GOMAXPROCS); results identical at any setting")
	fastsim := flag.Bool("fastsim", false, "scan trials through the fast-sim scanner approximation; curves must stay inside the -diff bands of the reference baseline")
	out := flag.String("out", "", "write the campaign JSON to this file (- or empty for stdout)")
	diff := flag.String("diff", "", "compare against this baseline JSON instead of printing; non-zero exit on regression")
	tol := flag.Float64("tol", 0.15, "diff mode: flat tolerance on recovered fraction (binomial slack added per point)")
	flag.Parse()

	cfg := campaign.Config{
		Profiles:    splitList(*profiles),
		Axes:        splitList(*axes),
		Trials:      *trials,
		Seed:        *seed,
		CorpusBytes: *corpus,
		Workers:     *workers,
		FastSim:     *fastsim,
	}

	t0 := time.Now()
	res, err := campaign.Run(cfg)
	check(err)
	res.Command = command(cfg)
	fmt.Fprintf(os.Stderr, "campaign: %d curves in %v\n", len(res.Curves), time.Since(t0).Round(time.Millisecond))

	if *diff != "" {
		base, err := campaign.LoadBaseline(*diff)
		check(err)
		rep := campaign.Diff(base, res, *tol)
		fmt.Println(rep)
		if len(rep.Regressions) > 0 {
			os.Exit(1)
		}
		return
	}

	b, err := res.Marshal()
	check(err)
	if *out == "" || *out == "-" {
		os.Stdout.Write(b)
	} else {
		check(os.WriteFile(*out, b, 0o644))
		fmt.Fprintf(os.Stderr, "campaign: wrote %s (%d bytes)\n", *out, len(b))
	}
}

// command renders the canonical reproduction command for a config — the
// line recorded in the JSON so a future session can regenerate the
// baseline bit-for-bit.
func command(cfg campaign.Config) string {
	var b strings.Builder
	b.WriteString("go run ./cmd/campaign")
	if len(cfg.Profiles) > 0 {
		fmt.Fprintf(&b, " -profiles %s", strings.Join(cfg.Profiles, ","))
	}
	if len(cfg.Axes) > 0 {
		fmt.Fprintf(&b, " -axes %s", strings.Join(cfg.Axes, ","))
	}
	if cfg.Trials > 0 {
		fmt.Fprintf(&b, " -trials %d", cfg.Trials)
	}
	if cfg.Seed != 0 {
		fmt.Fprintf(&b, " -seed %d", cfg.Seed)
	}
	if cfg.CorpusBytes > 0 {
		fmt.Fprintf(&b, " -corpus %d", cfg.CorpusBytes)
	}
	if cfg.FastSim {
		b.WriteString(" -fastsim")
	}
	b.WriteString(" -out CAMPAIGN.json")
	return b.String()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}
