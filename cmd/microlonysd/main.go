// Command microlonysd is the archival job service: a long-running HTTP
// daemon that runs many concurrent archive/restore/salvage/range-query
// jobs against one shared bounded worker pool (internal/jobs).
//
//	microlonysd [-addr :8732] [-workers 4] [-queue 32] [-retries 3]
//	            [-journal PATH] [-drain 30s] [-profile paper|microfilm|cinema|tiny]
//	            [-fastsim] [-compress=true]
//
// Archives are held in an in-memory store keyed by name: an archive job
// reads a file from disk and stores the resulting volume; restore,
// range, table, listindex and salvage jobs operate on a stored archive
// by name. Jobs are asynchronous: submission returns a job ID, progress
// and results are polled.
//
// Endpoints:
//
//	POST /v1/archive    {"name","input",...}        file -> stored archive
//	POST /v1/restore    {"name","output"?}          stored archive -> bytes or file
//	POST /v1/range      {"name","off","length"}     byte range of the payload
//	POST /v1/table      {"name","table"}            one SQL-dump table's rows
//	POST /v1/listindex  {"name"}                    index summary, no payload decode
//	POST /v1/salvage    {"name","output"?}          best-effort loose-sheet restore
//	GET  /v1/jobs                                   every job's snapshot
//	GET  /v1/jobs/{id}                              one job's snapshot
//	GET  /v1/jobs/{id}/result                       a finished job's bytes
//	DELETE /v1/jobs/{id}                            cancel
//	GET  /v1/recovered                              jobs replayed from the journal
//	GET  /healthz                                   process liveness (always 200)
//	GET  /readyz                                    503 once draining begins
//
// A full queue answers 429; submissions during drain answer 503. On
// SIGTERM or SIGINT the daemon stops admitting, lets in-flight jobs
// finish within the -drain budget (cancelling stragglers past it),
// fsyncs and closes the journal, then exits 0.
//
// The -chaos-source-failures and -chaos-slow-source flags inject
// deterministic faults into every archive job's input stream; they exist
// for the chaos smoke test and for rehearsing operational runbooks.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"microlonys/internal/core"
	"microlonys/internal/faultinject"
	"microlonys/internal/jobs"
	"microlonys/media"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintf(os.Stderr, "microlonysd: %v\n", err)
		os.Exit(1)
	}
}

type server struct {
	mgr      *jobs.Manager
	opts     core.Options // archive defaults for the chosen profile
	draining atomic.Bool

	chaosFailures int           // transient source failures injected per archive job
	chaosSlow     time.Duration // latency injected per source read

	mu       sync.Mutex
	archives map[string]*core.Archived
}

// run parses flags, starts the manager and the HTTP listener, and blocks
// until SIGTERM/SIGINT triggers a graceful drain. When ready is non-nil
// it receives the bound address once the listener is up (tests bind
// ":0" and read the port from here).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("microlonysd", flag.ContinueOnError)
	addr := fs.String("addr", ":8732", "listen address")
	workers := fs.Int("workers", 4, "shared worker pool size (total pipeline parallelism)")
	queue := fs.Int("queue", 32, "admission queue depth; beyond it submissions get 429")
	retries := fs.Int("retries", 3, "retry budget for transient I/O faults per job")
	journal := fs.String("journal", "", "append-only JSONL job journal path (empty: no journal)")
	drainBudget := fs.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM")
	profile := fs.String("profile", "paper", "media profile: paper, microfilm, cinema, tiny")
	fastsim := fs.Bool("fastsim", false, "use the fast scanner approximation")
	compress := fs.Bool("compress", true, "run DBCoder on archive payloads")
	chaosFailures := fs.Int("chaos-source-failures", 0, "inject N transient failures into every archive source (testing)")
	chaosSlow := fs.Duration("chaos-slow-source", 0, "inject per-read latency into every archive source (testing)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var prof media.Profile
	switch *profile {
	case "paper":
		prof = media.Paper()
	case "microfilm":
		prof = media.Microfilm()
	case "cinema":
		prof = media.CinemaFilm()
	case "tiny":
		prof = media.Tiny()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	if *fastsim {
		prof.Scanner.FastSim = true
	}

	mgr, err := jobs.New(jobs.Config{
		Workers: *workers, QueueDepth: *queue, MaxRetries: *retries,
		JournalPath: *journal,
	})
	if err != nil {
		return err
	}
	opts := core.DefaultOptions(prof)
	opts.Compress = *compress
	s := &server{
		mgr: mgr, opts: opts,
		chaosFailures: *chaosFailures, chaosSlow: *chaosSlow,
		archives: make(map[string]*core.Archived),
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.routes()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)
	select {
	case <-sig:
	case err := <-serveErr:
		return err
	}

	// Graceful drain: stop admitting (readyz flips to 503, Submit
	// answers 503), finish in-flight work within the budget, cancel
	// stragglers, flush the journal, then stop serving.
	s.draining.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drainBudget)
	defer cancel()
	if err := mgr.Drain(ctx); err != nil {
		httpSrv.Close()
		return err
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	return httpSrv.Shutdown(shutCtx)
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/archive", s.handleArchive)
	mux.HandleFunc("POST /v1/restore", s.handleRestore)
	mux.HandleFunc("POST /v1/range", s.handleRange)
	mux.HandleFunc("POST /v1/table", s.handleTable)
	mux.HandleFunc("POST /v1/listindex", s.handleListIndex)
	mux.HandleFunc("POST /v1/salvage", s.handleSalvage)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/recovered", s.handleRecovered)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
	})
	return mux
}

// submitBody is the JSON request body shared by the submission endpoints;
// each endpoint reads the fields its kind needs.
type submitBody struct {
	Name      string `json:"name"`
	Input     string `json:"input,omitempty"`  // archive: file to read
	Output    string `json:"output,omitempty"` // restore/salvage: file to write (empty: buffer in memory)
	Table     string `json:"table,omitempty"`
	Off       int    `json:"off,omitempty"`
	Length    int    `json:"length,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Indexed   bool   `json:"indexed,omitempty"` // archive: build catalog + selective-restore index
}

func decodeBody(w http.ResponseWriter, r *http.Request, b *submitBody) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(b); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	if b.Name == "" {
		http.Error(w, "missing archive name", http.StatusBadRequest)
		return false
	}
	return true
}

// submit maps the manager's admission errors onto HTTP status codes:
// queue full -> 429, draining -> 503, bad request -> 400.
func (s *server) submit(w http.ResponseWriter, req jobs.Request) {
	id, err := s.mgr.Submit(req)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		http.Error(w, "queue full, retry later", http.StatusTooManyRequests)
	case errors.Is(err, jobs.ErrDraining):
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]int64{"job": id})
	}
}

func (s *server) lookup(w http.ResponseWriter, name string) (*core.Archived, bool) {
	s.mu.Lock()
	arch, ok := s.archives[name]
	s.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("no archive named %q", name), http.StatusNotFound)
	}
	return arch, ok
}

func (s *server) handleArchive(w http.ResponseWriter, r *http.Request) {
	var b submitBody
	if !decodeBody(w, r, &b) {
		return
	}
	if b.Input == "" {
		http.Error(w, "missing input path", http.StatusBadRequest)
		return
	}
	opts := s.opts
	if b.Indexed {
		opts.Catalog = true
		opts.Index = true
	}
	// One fault budget per job, shared across retry attempts, so the
	// chaos flags model a source that recovers rather than one that
	// fails forever.
	var flaky *faultinject.Flaky
	if s.chaosFailures > 0 {
		flaky = faultinject.NewFlaky(s.chaosFailures)
	}
	input, slow := b.Input, s.chaosSlow
	name := b.Name
	req := jobs.Request{
		Kind: jobs.KindArchive,
		Source: func(context.Context) (io.Reader, error) {
			f, err := os.Open(input)
			if err != nil {
				return nil, err
			}
			// The file handle leaks until process exit if the job is
			// abandoned mid-read; jobs are short-lived, and the archive
			// pipeline always reads to EOF on success.
			var rd io.Reader = f
			if slow > 0 {
				rd = faultinject.SlowReader(rd, slow)
			}
			if flaky != nil {
				rd = flaky.Reader(rd)
			}
			return rd, nil
		},
		ArchiveOptions: opts,
		Timeout:        time.Duration(b.TimeoutMS) * time.Millisecond,
	}
	id, err := s.mgr.Submit(req)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		http.Error(w, "queue full, retry later", http.StatusTooManyRequests)
		return
	case errors.Is(err, jobs.ErrDraining):
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Store the finished archive under its name once the job succeeds.
	go func() {
		res, _, err := s.mgr.Wait(context.Background(), id)
		if err == nil && res.Archived != nil {
			s.mu.Lock()
			s.archives[name] = res.Archived
			s.mu.Unlock()
		}
	}()
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]int64{"job": id})
}

func fileSink(path string) func(context.Context) (io.Writer, error) {
	if path == "" {
		return nil
	}
	return func(context.Context) (io.Writer, error) {
		return os.Create(path) // truncates, so each retry attempt starts clean
	}
}

func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var b submitBody
	if !decodeBody(w, r, &b) {
		return
	}
	arch, ok := s.lookup(w, b.Name)
	if !ok {
		return
	}
	s.submit(w, jobs.Request{
		Kind: jobs.KindRestore, Volume: arch.Volume, BootstrapText: arch.BootstrapText,
		RestoreOptions: core.RestoreOptions{Mode: core.RestoreNative},
		Sink:           fileSink(b.Output),
		Timeout:        time.Duration(b.TimeoutMS) * time.Millisecond,
	})
}

func (s *server) handleRange(w http.ResponseWriter, r *http.Request) {
	var b submitBody
	if !decodeBody(w, r, &b) {
		return
	}
	arch, ok := s.lookup(w, b.Name)
	if !ok {
		return
	}
	if b.Length <= 0 {
		http.Error(w, "length must be positive", http.StatusBadRequest)
		return
	}
	s.submit(w, jobs.Request{
		Kind: jobs.KindRange, Volume: arch.Volume, BootstrapText: arch.BootstrapText,
		Off: b.Off, Length: b.Length,
		RestoreOptions: core.RestoreOptions{Mode: core.RestoreNative},
		Timeout:        time.Duration(b.TimeoutMS) * time.Millisecond,
	})
}

func (s *server) handleTable(w http.ResponseWriter, r *http.Request) {
	var b submitBody
	if !decodeBody(w, r, &b) {
		return
	}
	arch, ok := s.lookup(w, b.Name)
	if !ok {
		return
	}
	if b.Table == "" {
		http.Error(w, "missing table name", http.StatusBadRequest)
		return
	}
	s.submit(w, jobs.Request{
		Kind: jobs.KindTable, Volume: arch.Volume, BootstrapText: arch.BootstrapText,
		Table:          b.Table,
		RestoreOptions: core.RestoreOptions{Mode: core.RestoreNative},
		Timeout:        time.Duration(b.TimeoutMS) * time.Millisecond,
	})
}

func (s *server) handleListIndex(w http.ResponseWriter, r *http.Request) {
	var b submitBody
	if !decodeBody(w, r, &b) {
		return
	}
	arch, ok := s.lookup(w, b.Name)
	if !ok {
		return
	}
	s.submit(w, jobs.Request{
		Kind: jobs.KindListIndex, Volume: arch.Volume, BootstrapText: arch.BootstrapText,
		RestoreOptions: core.RestoreOptions{Mode: core.RestoreNative},
		Timeout:        time.Duration(b.TimeoutMS) * time.Millisecond,
	})
}

func (s *server) handleSalvage(w http.ResponseWriter, r *http.Request) {
	var b submitBody
	if !decodeBody(w, r, &b) {
		return
	}
	arch, ok := s.lookup(w, b.Name)
	if !ok {
		return
	}
	var bag []*media.Medium
	for i := 0; i < arch.Volume.Sheets(); i++ {
		m, err := arch.Volume.Sheet(i)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		bag = append(bag, m)
	}
	s.submit(w, jobs.Request{
		Kind: jobs.KindSalvage, Sheets: bag,
		SalvageOptions: core.SalvageOptions{Mode: core.RestoreNative},
		Sink:           fileSink(b.Output),
		Timeout:        time.Duration(b.TimeoutMS) * time.Millisecond,
	})
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	json.NewEncoder(w).Encode(s.mgr.Jobs())
}

func (s *server) handleRecovered(w http.ResponseWriter, r *http.Request) {
	json.NewEncoder(w).Encode(s.mgr.Recovered())
}

func jobID(w http.ResponseWriter, r *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return 0, false
	}
	return id, true
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	snap, err := s.mgr.Job(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	json.NewEncoder(w).Encode(snap)
}

// handleResult serves a finished job's in-memory output bytes. Jobs that
// wrote to an output file return 204: the bytes are on disk.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	snap, err := s.mgr.Job(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if !snap.State.Terminal() {
		http.Error(w, fmt.Sprintf("job is %s", snap.State), http.StatusConflict)
		return
	}
	res, snap, err := s.mgr.Wait(r.Context(), id) // terminal: returns immediately
	if err != nil {
		http.Error(w, fmt.Sprintf("job %s: %s", snap.State, snap.Err), http.StatusConflict)
		return
	}
	switch {
	case res.Index != nil:
		json.NewEncoder(w).Encode(res.Index)
	case res.Data != nil:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(res.Data)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	if err := s.mgr.Cancel(id); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}
