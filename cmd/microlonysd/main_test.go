package main

// The chaos smoke: boot the daemon in-process on a random port with
// fault injection on every archive source, drive the HTTP API end to
// end — archive (with retries), restore, range query, a burst of
// concurrent jobs — then deliver a real SIGTERM and assert the drain
// finishes every job, the process exits cleanly, and the journal
// replays the whole run.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"microlonys/internal/jobs"
)

func smokePayload() []byte {
	var b bytes.Buffer
	for i := 0; b.Len() < 16*1024; i++ {
		fmt.Fprintf(&b, "INSERT INTO lineitem VALUES (%d, 155190, 7706, 17, 21168.23, '1996-03-13');\n", i)
	}
	return b.Bytes()
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func submitJob(t *testing.T, url string, body any) int64 {
	t.Helper()
	code, out := postJSON(t, url, body)
	if code != http.StatusAccepted {
		t.Fatalf("POST %s: %d %s", url, code, out)
	}
	var resp struct {
		Job int64 `json:"job"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Job
}

func waitJob(t *testing.T, base string, id int64) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		code, out := getBody(t, fmt.Sprintf("%s/v1/jobs/%d", base, id))
		if code != http.StatusOK {
			t.Fatalf("GET job %d: %d %s", id, code, out)
		}
		var snap jobs.Snapshot
		if err := json.Unmarshal(out, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %d never reached a terminal state", id)
	return jobs.Snapshot{}
}

func TestChaosSmoke(t *testing.T) {
	dir := t.TempDir()
	payload := smokePayload()
	inputPath := filepath.Join(dir, "payload.sql")
	if err := os.WriteFile(inputPath, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	journalPath := filepath.Join(dir, "jobs.journal")

	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-workers", "3",
			"-queue", "16",
			"-retries", "3",
			"-journal", journalPath,
			"-drain", "60s",
			"-profile", "tiny",
			"-chaos-source-failures", "1",
			"-chaos-slow-source", "1ms",
		}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-runErr:
		t.Fatalf("daemon did not start: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not start in time")
	}

	if code, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code, _ := getBody(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}

	// Archive under injected faults: the flaky source fails once, the
	// retry loop must carry the job to success anyway.
	archiveID := submitJob(t, base+"/v1/archive", map[string]any{
		"name": "demo", "input": inputPath,
	})
	snap := waitJob(t, base, archiveID)
	if snap.State != jobs.StateSucceeded {
		t.Fatalf("archive job: %s (%s)", snap.State, snap.Err)
	}
	if snap.Retries < 1 {
		t.Fatalf("archive job retried %d times; the chaos flag injects 1 failure", snap.Retries)
	}

	// Restore it back and compare bytes end to end.
	restoreID := submitJob(t, base+"/v1/restore", map[string]any{"name": "demo"})
	if snap := waitJob(t, base, restoreID); snap.State != jobs.StateSucceeded {
		t.Fatalf("restore job: %s (%s)", snap.State, snap.Err)
	}
	code, got := getBody(t, fmt.Sprintf("%s/v1/jobs/%d/result", base, restoreID))
	if code != http.StatusOK || !bytes.Equal(got, payload) {
		t.Fatalf("restore result: %d, %d bytes (want %d identical)", code, len(got), len(payload))
	}

	// A range query (index-less volume: served via the full-restore
	// fallback) must return the exact slice.
	rangeID := submitJob(t, base+"/v1/range", map[string]any{
		"name": "demo", "off": 10, "length": 100,
	})
	if snap := waitJob(t, base, rangeID); snap.State != jobs.StateSucceeded {
		t.Fatalf("range job: %s (%s)", snap.State, snap.Err)
	}
	code, got = getBody(t, fmt.Sprintf("%s/v1/jobs/%d/result", base, rangeID))
	if code != http.StatusOK || !bytes.Equal(got, payload[10:110]) {
		t.Fatalf("range result: %d, %q", code, got)
	}

	// Error paths: unknown archive -> 404, malformed body -> 400,
	// unknown job -> 404.
	if code, _ := postJSON(t, base+"/v1/restore", map[string]any{"name": "ghost"}); code != http.StatusNotFound {
		t.Fatalf("restore of unknown archive: %d, want 404", code)
	}
	if resp, err := http.Post(base+"/v1/archive", "application/json", strings.NewReader("{not json")); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed body: %d, want 400", resp.StatusCode)
		}
	}
	if code, _ := getBody(t, base+"/v1/jobs/99999"); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", code)
	}

	// A burst of concurrent jobs left in flight, then SIGTERM: the
	// drain must finish them all before the process exits.
	var burst []int64
	for i := 0; i < 6; i++ {
		burst = append(burst, submitJob(t, base+"/v1/restore", map[string]any{"name": "demo"}))
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("daemon did not drain and exit after SIGTERM")
	}

	// The journal must replay the whole run: every job terminal, the
	// burst finished by the drain, none interrupted.
	replayed, err := jobs.ReplayJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	wantJobs := 3 + len(burst)
	if len(replayed) != wantJobs {
		t.Fatalf("journal replays %d jobs, want %d", len(replayed), wantJobs)
	}
	byID := map[int64]jobs.Snapshot{}
	for _, s := range replayed {
		if !s.State.Terminal() {
			t.Fatalf("journal job %d not terminal after drain: %s", s.ID, s.State)
		}
		byID[s.ID] = s
	}
	for _, id := range burst {
		if byID[id].State != jobs.StateSucceeded {
			t.Fatalf("burst job %d: %s, want succeeded by the drain", id, byID[id].State)
		}
	}

	// A restarted daemon replays the journal through /v1/recovered.
	ready2 := make(chan string, 1)
	runErr2 := make(chan error, 1)
	go func() {
		runErr2 <- run([]string{
			"-addr", "127.0.0.1:0", "-journal", journalPath, "-profile", "tiny",
		}, ready2)
	}()
	var base2 string
	select {
	case addr := <-ready2:
		base2 = "http://" + addr
	case err := <-runErr2:
		t.Fatalf("restarted daemon did not start: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("restarted daemon did not start in time")
	}
	code, out := getBody(t, base2+"/v1/recovered")
	if code != http.StatusOK {
		t.Fatalf("recovered: %d", code)
	}
	var recovered []jobs.Snapshot
	if err := json.Unmarshal(out, &recovered); err != nil {
		t.Fatal(err)
	}
	if len(recovered) != wantJobs {
		t.Fatalf("restart recovered %d jobs, want %d", len(recovered), wantJobs)
	}
	syscall.Kill(os.Getpid(), syscall.SIGTERM)
	select {
	case err := <-runErr2:
		if err != nil {
			t.Fatalf("restarted daemon exited with error: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("restarted daemon did not exit after SIGTERM")
	}
}
