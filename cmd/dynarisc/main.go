// Command dynarisc assembles, runs and disassembles DynaRisc programs,
// and prints the instruction set (the paper's Table 1).
//
// Usage:
//
//	dynarisc -isa                        # print the 23-instruction ISA
//	dynarisc -run prog.asm [-in file]    # assemble + execute
//	dynarisc -disasm prog.asm            # assemble then disassemble
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"microlonys/dynarisc"
)

func main() {
	isa := flag.Bool("isa", false, "print the DynaRisc instruction table (Table 1)")
	run := flag.String("run", "", "assemble and run this source file")
	disasm := flag.String("disasm", "", "assemble and disassemble this source file")
	inFile := flag.String("in", "", "input stream file (bytes)")
	maxSteps := flag.Uint64("maxsteps", 1<<32, "execution step limit")
	flag.Parse()

	switch {
	case *isa:
		printISA()
	case *run != "":
		src, err := os.ReadFile(*run)
		check(err)
		p, err := dynarisc.Assemble(string(src))
		check(err)
		cpu := dynarisc.NewCPU(0)
		cpu.MaxSteps = *maxSteps
		check(cpu.LoadProgram(p.Org, p.Words))
		if *inFile != "" {
			in, err := os.ReadFile(*inFile)
			check(err)
			cpu.SetInBytes(in)
		}
		check(cpu.Run())
		fmt.Fprintf(os.Stderr, "halted after %d steps, %d output words\n", cpu.Steps, len(cpu.Out))
		os.Stdout.Write(cpu.OutBytes())
	case *disasm != "":
		src, err := os.ReadFile(*disasm)
		check(err)
		p, err := dynarisc.Assemble(string(src))
		check(err)
		fmt.Print(dynarisc.Disassemble(p.Org, p.Words))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printISA() {
	fmt.Printf("DynaRisc: %d instructions (Table 1 of the paper marks the 17 it names)\n\n", dynarisc.OpCount)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "OP\tCLASS\tSYNTAX\tIN TABLE 1")
	for _, e := range dynarisc.ISATable() {
		mark := ""
		if e.InTable1 {
			mark = "yes"
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\n", e.Op, e.Class, e.Syntax, mark)
	}
	w.Flush()
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynarisc: %v\n", err)
		os.Exit(1)
	}
}
