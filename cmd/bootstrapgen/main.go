// Command bootstrapgen emits the Bootstrap document for a media profile —
// the seven-page-class plain-text artifact (§3.2) that is written to the
// medium beside the emblems and from which a future user reconstructs
// everything.
package main

import (
	"flag"
	"fmt"
	"os"

	"microlonys/internal/bootstrap"
	"microlonys/internal/dynprog"
	"microlonys/internal/nested"
	"microlonys/media"
)

func main() {
	profile := flag.String("profile", "paper", "media profile: paper, microfilm, cinema")
	stats := flag.Bool("stats", false, "print page statistics instead of the document")
	flag.Parse()

	var prof media.Profile
	switch *profile {
	case "paper":
		prof = media.Paper()
	case "microfilm":
		prof = media.Microfilm()
	case "cinema":
		prof = media.CinemaFilm()
	default:
		fmt.Fprintf(os.Stderr, "bootstrapgen: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	emu, err := nested.Program()
	check(err)
	mo, err := dynprog.MODecode()
	check(err)
	doc := bootstrap.New(prof.Name, prof.Layout, 17, 3, emu, mo)

	if *stats {
		s := doc.PageStats()
		fmt.Printf("pseudocode: %d lines (%d pages)\n", s.PseudocodeLines, s.PseudocodePages)
		fmt.Printf("letters:    %d chars (%d pages)\n", s.LetterChars, s.LetterPages)
		fmt.Printf("total:      %d chars (%d pages at 80x66)\n", s.TotalChars, s.TotalPages)
		return
	}
	fmt.Print(doc.Render())
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "bootstrapgen: %v\n", err)
		os.Exit(1)
	}
}
