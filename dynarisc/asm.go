package dynarisc

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled DynaRisc image.
type Program struct {
	Org    uint16
	Words  []uint16
	Labels map[string]uint16
}

// Assemble translates DynaRisc assembly source into a memory image.
//
// Syntax (one statement per line, ';' starts a comment):
//
//	label:  LDI   R0, 0x1F        ; immediates: decimal, hex, 'c', labels
//	        MOVE  D0, R1          ; registers R0..R7, D0..D3
//	        MOVH  D0, R2          ; set pointer high byte (MOVE mode 1)
//	        LDM   R3, [D0]
//	        STM   R3, [D1]
//	        JUMP  loop            ; absolute
//	        JUMP  R6              ; register-indirect
//	        CALL  subroutine      ; pseudo: LDI R6, ret; JUMP target
//	        RET                   ; pseudo: JUMP R6
//	.org    0x100                 ; location counter (word address)
//	.equ    NAME, expr
//	.word   1, 2, label+3
//	.space  16                    ; 16 zero words (optional fill value)
//	.ascii  "text"                ; one character per word
//
// Expressions support + and - over numbers, character literals, .equ
// names and labels (forward references allowed everywhere except .org and
// .equ).
func Assemble(src string) (*Program, error) {
	a := &assembler{
		syms:   map[string]int64{},
		labels: map[string]uint16{},
	}
	// Pass 1: sizes and labels. Pass 2: emission.
	for pass := 1; pass <= 2; pass++ {
		a.pass = pass
		a.loc = 0
		a.org = 0
		a.orgSet = false
		a.out = a.out[:0]
		for lineNo, raw := range strings.Split(src, "\n") {
			if err := a.line(raw, lineNo+1); err != nil {
				return nil, err
			}
		}
	}
	labels := make(map[string]uint16, len(a.labels))
	for k, v := range a.labels {
		labels[k] = v
	}
	return &Program{Org: a.org, Words: append([]uint16(nil), a.out...), Labels: labels}, nil
}

// MustAssemble is Assemble for known-good embedded sources; it panics on
// error (a build-time bug, not a runtime condition).
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	pass   int
	loc    int // location counter (word address)
	org    uint16
	orgSet bool
	out    []uint16
	syms   map[string]int64
	labels map[string]uint16
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return fmt.Errorf("dynarisc asm: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (a *assembler) emit(ws ...uint16) {
	if a.pass == 2 {
		a.out = append(a.out, ws...)
	}
	a.loc += len(ws)
}

func (a *assembler) line(raw string, n int) error {
	if i := strings.IndexByte(raw, ';'); i >= 0 {
		raw = raw[:i]
	}
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil
	}

	// Labels (possibly several, possibly followed by a statement).
	for {
		i := strings.IndexByte(s, ':')
		if i < 0 || strings.ContainsAny(s[:i], " \t\",") {
			break
		}
		name := s[:i]
		if !validName(name) {
			return a.errf(n, "invalid label %q", name)
		}
		if a.pass == 1 {
			if _, dup := a.labels[name]; dup {
				return a.errf(n, "duplicate label %q", name)
			}
			if _, dup := a.syms[name]; dup {
				return a.errf(n, "label %q collides with .equ", name)
			}
			a.labels[name] = uint16(a.loc)
		}
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}

	mnemonic, rest, _ := strings.Cut(s, " ")
	mnemonic = strings.ToUpper(strings.TrimSpace(mnemonic))
	rest = strings.TrimSpace(rest)

	if strings.HasPrefix(mnemonic, ".") {
		return a.directive(mnemonic, rest, n)
	}
	return a.instruction(mnemonic, rest, n)
}

func (a *assembler) directive(d, rest string, n int) error {
	switch d {
	case ".ORG":
		v, err := a.eval(rest, n)
		if err != nil {
			return err
		}
		if v < int64(a.loc) {
			return a.errf(n, ".org %d before current location %d", v, a.loc)
		}
		if !a.orgSet && a.loc == 0 {
			a.org = uint16(v)
			a.orgSet = true
			a.loc = int(v)
			return nil
		}
		// Pad forward.
		for int64(a.loc) < v {
			a.emit(0)
		}
		return nil
	case ".EQU":
		name, expr, ok := strings.Cut(rest, ",")
		if !ok {
			return a.errf(n, ".equ wants NAME, value")
		}
		name = strings.TrimSpace(name)
		if !validName(name) {
			return a.errf(n, "invalid .equ name %q", name)
		}
		v, err := a.eval(expr, n)
		if err != nil {
			return err
		}
		a.syms[name] = v
		return nil
	case ".WORD":
		for _, f := range splitOperands(rest) {
			v, err := a.eval(f, n)
			if err != nil {
				return err
			}
			a.emit(uint16(v))
		}
		return nil
	case ".SPACE":
		fields := splitOperands(rest)
		if len(fields) == 0 || len(fields) > 2 {
			return a.errf(n, ".space wants COUNT [, fill]")
		}
		count, err := a.eval(fields[0], n)
		if err != nil {
			return err
		}
		fill := int64(0)
		if len(fields) == 2 {
			if fill, err = a.eval(fields[1], n); err != nil {
				return err
			}
		}
		for i := int64(0); i < count; i++ {
			a.emit(uint16(fill))
		}
		return nil
	case ".ASCII":
		str, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return a.errf(n, ".ascii wants a quoted string: %v", err)
		}
		for _, ch := range []byte(str) {
			a.emit(uint16(ch))
		}
		return nil
	default:
		return a.errf(n, "unknown directive %s", d)
	}
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, OpCount)
	for op := Op(0); op < OpCount; op++ {
		m[op.String()] = op
	}
	return m
}()

func (a *assembler) instruction(mn, rest string, n int) error {
	ops := splitOperands(rest)

	// Pseudo-instructions.
	switch mn {
	case "CALL":
		if len(ops) != 1 {
			return a.errf(n, "CALL wants one target")
		}
		// LDI R6, <after jump>; JUMP target — the link-register calling
		// convention; callees return with RET (JUMP R6).
		ret := a.loc + 4
		a.emit(Encode(LDI, R6, 0, 0), uint16(ret))
		v, err := a.eval(ops[0], n)
		if err != nil {
			return err
		}
		a.emit(Encode(JUMP, 0, 0, 0), uint16(v))
		return nil
	case "RET":
		if len(ops) != 0 {
			return a.errf(n, "RET takes no operands")
		}
		a.emit(Encode(JUMP, R6, 0, 1))
		return nil
	case "NOP":
		a.emit(Encode(MOVE, R0, R0, 0))
		return nil
	case "MOVH":
		if len(ops) != 2 {
			return a.errf(n, "MOVH wants Dd, Rs")
		}
		rd, ok1 := regByName(ops[0])
		rs, ok2 := regByName(ops[1])
		if !ok1 || !ok2 || !IsPointer(rd) {
			return a.errf(n, "MOVH wants pointer destination and register source")
		}
		a.emit(Encode(MOVE, rd, rs, 1))
		return nil
	}

	op, ok := opByName[mn]
	if !ok {
		return a.errf(n, "unknown instruction %q", mn)
	}

	switch op {
	case HALT:
		if len(ops) != 0 {
			return a.errf(n, "HALT takes no operands")
		}
		a.emit(Encode(HALT, 0, 0, 0))

	case MOVE, ADD, ADC, SUB, SBB, CMP, MUL, AND, OR, XOR, LSL, LSR, ASR, ROR:
		if len(ops) != 2 {
			return a.errf(n, "%s wants Rd, Rs", mn)
		}
		rd, ok1 := regByName(ops[0])
		rs, ok2 := regByName(ops[1])
		if !ok1 || !ok2 {
			return a.errf(n, "%s wants two registers, got %q, %q", mn, ops[0], ops[1])
		}
		if op == MUL && (rd == R7 || rs == R7) {
			return a.errf(n, "MUL must not use R7 (it receives the high product word)")
		}
		a.emit(Encode(op, rd, rs, 0))

	case LDI:
		if len(ops) != 2 {
			return a.errf(n, "LDI wants Rd, #imm")
		}
		rd, ok := regByName(ops[0])
		if !ok {
			return a.errf(n, "LDI destination %q is not a register", ops[0])
		}
		v, err := a.eval(strings.TrimPrefix(ops[1], "#"), n)
		if err != nil {
			return err
		}
		if v < -0x8000 || v > 0xFFFF {
			return a.errf(n, "LDI immediate %d out of 16-bit range", v)
		}
		a.emit(Encode(LDI, rd, 0, 0), uint16(v))

	case LDM, STM:
		if len(ops) != 2 {
			return a.errf(n, "%s wants Rx, [Dy]", mn)
		}
		r, ok1 := regByName(ops[0])
		ptr, ok2 := pointerOperand(ops[1])
		if !ok1 || !ok2 {
			return a.errf(n, "%s wants register and [pointer], got %q, %q", mn, ops[0], ops[1])
		}
		a.emit(Encode(op, r, ptr, 0))

	case JUMP, JZ, JNZ, JC, JNC:
		if len(ops) != 1 {
			return a.errf(n, "%s wants a target", mn)
		}
		if r, ok := regByName(ops[0]); ok {
			a.emit(Encode(op, r, 0, 1))
			return nil
		}
		v, err := a.eval(ops[0], n)
		if err != nil {
			return err
		}
		if v < 0 || v > 0xFFFF {
			return a.errf(n, "jump target %d out of code range", v)
		}
		a.emit(Encode(op, 0, 0, 0), uint16(v))

	default:
		return a.errf(n, "unhandled opcode %s", mn)
	}
	return nil
}

// eval evaluates a +/- expression over numbers, chars, labels and .equ
// names. During pass 1 unresolved labels evaluate to 0 (only sizes matter).
func (a *assembler) eval(expr string, n int) (int64, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, a.errf(n, "empty expression")
	}
	total := int64(0)
	sign := int64(1)
	i := 0
	expectTerm := true
	for i < len(expr) {
		ch := expr[i]
		switch {
		case ch == ' ' || ch == '\t':
			i++
		case ch == '+' && !expectTerm:
			sign = 1
			expectTerm = true
			i++
		case ch == '-':
			if expectTerm {
				sign = -sign
			} else {
				sign = -1
				expectTerm = true
			}
			i++
		case expectTerm:
			j := i
			for j < len(expr) && expr[j] != '+' && expr[j] != '-' && expr[j] != ' ' && expr[j] != '\t' {
				j++
			}
			tok := expr[i:j]
			v, err := a.term(tok, n)
			if err != nil {
				return 0, err
			}
			total += sign * v
			sign = 1
			expectTerm = false
			i = j
		default:
			return 0, a.errf(n, "unexpected %q in expression %q", ch, expr)
		}
	}
	if expectTerm {
		return 0, a.errf(n, "dangling operator in %q", expr)
	}
	return total, nil
}

func (a *assembler) term(tok string, n int) (int64, error) {
	if tok == "$" {
		return int64(a.loc), nil
	}
	if len(tok) >= 3 && tok[0] == '\'' && tok[len(tok)-1] == '\'' {
		s, err := strconv.Unquote(tok)
		if err != nil || len(s) != 1 {
			return 0, a.errf(n, "bad character literal %s", tok)
		}
		return int64(s[0]), nil
	}
	if v, err := strconv.ParseInt(tok, 0, 64); err == nil {
		return v, nil
	}
	if v, ok := a.syms[tok]; ok {
		return v, nil
	}
	if v, ok := a.labels[tok]; ok {
		return int64(v), nil
	}
	if a.pass == 1 && validName(tok) {
		return 0, nil // forward reference; resolved in pass 2
	}
	return 0, a.errf(n, "undefined symbol %q", tok)
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func regByName(s string) (int, bool) {
	switch strings.ToUpper(s) {
	case "R0":
		return R0, true
	case "R1":
		return R1, true
	case "R2":
		return R2, true
	case "R3":
		return R3, true
	case "R4":
		return R4, true
	case "R5":
		return R5, true
	case "R6":
		return R6, true
	case "R7":
		return R7, true
	case "D0":
		return D0, true
	case "D1":
		return D1, true
	case "D2":
		return D2, true
	case "D3":
		return D3, true
	}
	return 0, false
}

func pointerOperand(s string) (int, bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, false
	}
	r, ok := regByName(strings.TrimSpace(s[1 : len(s)-1]))
	if !ok || !IsPointer(r) {
		return 0, false
	}
	return r, true
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, ch := range s {
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch == '_', ch == '.':
		case ch >= '0' && ch <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	if _, isReg := regByName(s); isReg {
		return false
	}
	return true
}
