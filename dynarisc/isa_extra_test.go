package dynarisc

import "testing"

func TestHasImmediate(t *testing.T) {
	if !HasImmediate(LDI, 0) {
		t.Fatal("LDI carries an immediate")
	}
	for _, op := range []Op{JUMP, JZ, JNZ, JC, JNC} {
		if !HasImmediate(op, 0) {
			t.Fatalf("%v absolute mode carries an immediate", op)
		}
		if HasImmediate(op, 1) {
			t.Fatalf("%v register mode carries no immediate", op)
		}
	}
	for _, op := range []Op{ADD, SUB, MUL, AND, MOVE, LDM, STM, HALT} {
		if HasImmediate(op, 0) || HasImmediate(op, 1) {
			t.Fatalf("%v carries no immediate", op)
		}
	}
}

func TestOpStringUnknown(t *testing.T) {
	if Op(63).String() == "" {
		t.Fatal("unknown opcode must still format")
	}
	if JUMP.String() != "JUMP" || SBB.String() != "SBB" {
		t.Fatal("mnemonics")
	}
}

func TestNewCPUBounds(t *testing.T) {
	if len(NewCPU(0).Mem) != DefaultMemWords {
		t.Fatal("default memory size")
	}
	if len(NewCPU(MaxMemWords*2).Mem) != MaxMemWords {
		t.Fatal("memory must clamp to the 24-bit pointer range")
	}
	if len(NewCPU(512).Mem) != 512 {
		t.Fatal("explicit size")
	}
}

func TestISATableCompleteAndClassified(t *testing.T) {
	table := ISATable()
	seen := map[Op]bool{}
	table1 := 0
	for _, e := range table {
		if seen[e.Op] {
			t.Fatalf("duplicate opcode %v", e.Op)
		}
		seen[e.Op] = true
		if e.Syntax == "" {
			t.Fatalf("%v lacks syntax", e.Op)
		}
		switch e.Class {
		case ClassArithmetic, ClassLogical, ClassControl:
		default:
			t.Fatalf("%v has no Table 1 class", e.Op)
		}
		if e.InTable1 {
			table1++
		}
	}
	// Table 1 names 17 instructions explicitly (LSL/LSR/ASR share a row).
	if table1 != 17 {
		t.Fatalf("%d instructions flagged as Table 1 rows, want 17", table1)
	}
}

func TestAssemblerRejectsBadImmediates(t *testing.T) {
	for _, src := range []string{
		"LDI R0, #70000\nHALT",  // immediate exceeds 16 bits
		"LDI R0\nHALT",          // missing operand
		"ADD R0, #5\nHALT",      // ALU ops take registers, not immediates
		"LDM R0, [R1]\nHALT",    // LDM needs a pointer register
		"JUMP nowhere",          // unresolved label
		"MOVE R0, R1, R2\nHALT", // too many operands
	} {
		if _, err := Assemble(src); err == nil {
			t.Fatalf("assembled invalid source %q", src)
		}
	}
}

func TestDisassembleUnknownWord(t *testing.T) {
	// Disassembly of arbitrary words must not panic.
	for w := 0; w < 1<<16; w += 257 {
		_ = Disassemble(0, []uint16{uint16(w)})
	}
}
