package dynarisc

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestISAHas23Instructions(t *testing.T) {
	if OpCount != 23 {
		t.Fatalf("ISA has %d instructions, the paper fixes 23", OpCount)
	}
	table := ISATable()
	if len(table) != 23 {
		t.Fatalf("table rows %d", len(table))
	}
	named := 0
	for _, e := range table {
		if e.Syntax == "" {
			t.Fatalf("op %s missing syntax", e.Op)
		}
		if e.InTable1 {
			named++
		}
	}
	// Table 1 of the paper names 17 instructions (counting LSL/LSR/ASR
	// individually); the other 6 are the conventional complements.
	if named != 17 {
		t.Fatalf("%d instructions marked as Table 1 members, want 17", named)
	}
}

func TestTable1Classes(t *testing.T) {
	want := map[Op]ISAClass{
		ADC: ClassArithmetic, SBB: ClassArithmetic, SUB: ClassArithmetic,
		CMP: ClassArithmetic, MUL: ClassArithmetic,
		AND: ClassLogical, OR: ClassLogical, XOR: ClassLogical,
		LSL: ClassLogical, LSR: ClassLogical, ASR: ClassLogical, ROR: ClassLogical,
		MOVE: ClassControl, LDI: ClassControl, LDM: ClassControl,
		STM: ClassControl, JUMP: ClassControl,
	}
	for op, class := range want {
		if ClassOf(op) != class {
			t.Errorf("%s classified %s, want %s", op, ClassOf(op), class)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(opRaw, rdRaw, rsRaw, modeRaw uint8) bool {
		op := Op(opRaw % OpCount)
		rd := int(rdRaw % 12)
		rs := int(rsRaw % 12)
		mode := int(modeRaw % 8)
		gotOp, gotRd, gotRs, gotMode := Decode(Encode(op, rd, rs, mode))
		return gotOp == op && gotRd == rd && gotRs == rs && gotMode == mode
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// run assembles and executes a source, returning the CPU.
func run(t *testing.T, src string, in []byte) *CPU {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := NewCPU(1 << 16)
	c.MaxSteps = 10_000_000
	if err := c.LoadProgram(p.Org, p.Words); err != nil {
		t.Fatal(err)
	}
	c.SetInBytes(in)
	if err := c.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestArithmeticFlags(t *testing.T) {
	c := run(t, `
		LDI R0, 0xFFFF
		LDI R1, 1
		ADD R0, R1      ; 0xFFFF+1 = 0 with carry
		HALT
	`, nil)
	if c.R[0] != 0 || !c.Z || !c.C || c.N {
		t.Fatalf("ADD wrap: R0=%#x Z=%v C=%v N=%v", c.R[0], c.Z, c.C, c.N)
	}

	c = run(t, `
		LDI R0, 5
		LDI R1, 7
		SUB R0, R1      ; 5-7 borrows
		HALT
	`, nil)
	if c.R[0] != 0xFFFE || !c.C || !c.N || c.Z {
		t.Fatalf("SUB borrow: R0=%#x C=%v N=%v", c.R[0], c.C, c.N)
	}
}

func TestADCSBBChain(t *testing.T) {
	// 32-bit addition via ADD/ADC register pairs: 0x1FFFF + 0x2FFFF.
	c := run(t, `
		LDI R0, 0xFFFF  ; a.lo
		LDI R1, 1       ; a.hi
		LDI R2, 0xFFFF  ; b.lo
		LDI R3, 2       ; b.hi
		ADD R0, R2
		ADC R1, R3
		HALT
	`, nil)
	if c.R[0] != 0xFFFE || c.R[1] != 4 {
		t.Fatalf("32-bit add: hi=%#x lo=%#x, want 4:fffe", c.R[1], c.R[0])
	}

	// 32-bit subtraction with borrow: 0x40000 - 1.
	c = run(t, `
		LDI R0, 0       ; a.lo
		LDI R1, 4       ; a.hi
		LDI R2, 1       ; b.lo
		LDI R3, 0       ; b.hi
		SUB R0, R2
		SBB R1, R3
		HALT
	`, nil)
	if c.R[0] != 0xFFFF || c.R[1] != 3 {
		t.Fatalf("32-bit sub: hi=%#x lo=%#x, want 3:ffff", c.R[1], c.R[0])
	}
}

func TestMULHiLo(t *testing.T) {
	c := run(t, `
		LDI R0, 0x1234
		LDI R1, 0x5678
		MUL R0, R1
		HALT
	`, nil)
	want := uint32(0x1234) * 0x5678
	if c.R[0] != uint16(want) || c.R[7] != uint16(want>>16) {
		t.Fatalf("MUL: lo=%#x hi=%#x, want %#x", c.R[0], c.R[7], want)
	}
	if !c.C {
		t.Fatal("MUL overflow must set C")
	}
	c = run(t, "LDI R0, 3\nLDI R1, 4\nMUL R0, R1\nHALT", nil)
	if c.R[0] != 12 || c.R[7] != 0 || c.C {
		t.Fatalf("small MUL: lo=%d hi=%d C=%v", c.R[0], c.R[7], c.C)
	}
}

func TestShifts(t *testing.T) {
	cases := []struct {
		src  string
		want uint16
		c    bool
	}{
		{"LDI R0, 0x8001\nLDI R1, 1\nLSL R0, R1\nHALT", 0x0002, true},
		{"LDI R0, 0x8001\nLDI R1, 1\nLSR R0, R1\nHALT", 0x4000, true},
		{"LDI R0, 0x8001\nLDI R1, 1\nASR R0, R1\nHALT", 0xC000, true},
		{"LDI R0, 0x8001\nLDI R1, 1\nROR R0, R1\nHALT", 0xC000, true},
		{"LDI R0, 0x00F0\nLDI R1, 4\nLSR R0, R1\nHALT", 0x000F, false},
		{"LDI R0, 1\nLDI R1, 0\nLSL R0, R1\nHALT", 1, false}, // count 0: no-op
	}
	for i, tc := range cases {
		c := run(t, tc.src, nil)
		if c.R[0] != tc.want {
			t.Errorf("case %d: R0=%#x want %#x", i, c.R[0], tc.want)
		}
		if i < 5 && c.C != tc.c {
			t.Errorf("case %d: C=%v want %v", i, c.C, tc.c)
		}
	}
}

func TestLogicOps(t *testing.T) {
	c := run(t, `
		LDI R0, 0xF0F0
		LDI R1, 0xFF00
		MOVE R2, R0
		AND R2, R1      ; F000
		MOVE R3, R0
		OR  R3, R1      ; FFF0
		MOVE R4, R0
		XOR R4, R1      ; 0FF0
		HALT
	`, nil)
	if c.R[2] != 0xF000 || c.R[3] != 0xFFF0 || c.R[4] != 0x0FF0 {
		t.Fatalf("logic: %#x %#x %#x", c.R[2], c.R[3], c.R[4])
	}
}

func TestPointerArithmetic24Bit(t *testing.T) {
	c := run(t, `
		LDI  R0, 0xFFFF
		MOVE D0, R0      ; D0 = 0x00FFFF
		LDI  R1, 1
		ADD  D0, R1      ; 24-bit: 0x010000, no carry
		HALT
	`, nil)
	if c.D[0] != 0x010000 || c.C {
		t.Fatalf("pointer add: D0=%#x C=%v", c.D[0], c.C)
	}

	c = run(t, `
		LDI  R0, 0xFFFF
		MOVE D0, R0
		LDI  R1, 0xFF
		MOVH D0, R1      ; D0 = 0xFFFFFF
		LDI  R1, 1
		ADD  D0, R1      ; wraps to 0 with carry
		HALT
	`, nil)
	if c.D[0] != 0 || !c.C || !c.Z {
		t.Fatalf("pointer wrap: D0=%#x C=%v Z=%v", c.D[0], c.C, c.Z)
	}
}

func TestLoadStoreAndIO(t *testing.T) {
	c := run(t, `
	.equ BUF, 0x200
		LDI  R0, BUF
		MOVE D0, R0
		LDI  R1, 0xBEEF
		STM  R1, [D0]
		LDM  R2, [D0]

		; copy three input bytes to output, doubling them
	.equ IOIN,  0xFFF0
	.equ IOOUT, 0xFFF2
		LDI  R3, 0xFF
		MOVH D1, R3       ; D1 = 0xFF0000
		LDI  R3, 0xFFF0
		MOVE R4, R3
		; build D1 = 0xFFFFF0 : high byte FF, low word FFF0
		MOVE D1, R4
		LDI  R3, 0xFF
		MOVH D1, R3
		LDI  R3, 0xFFF2
		MOVE D2, R3
		LDI  R4, 0xFF
		MOVH D2, R4       ; D2 = 0xFFFFF2 (IOOut)
	loop:
		LDM  R5, [D1]     ; read input word
		ADD  R5, R5       ; double
		STM  R5, [D2]
		LDI  R6, 0
		CMP  R6, R5       ; crude: stop after 3 (use counter instead)
		LDI  R7, 1
		MOVE R6, R7
		HALT
	`, []byte{21})
	if c.R[2] != 0xBEEF {
		t.Fatalf("LDM/STM: %#x", c.R[2])
	}
	if len(c.Out) != 1 || c.Out[0] != 42 {
		t.Fatalf("I/O: out=%v", c.Out)
	}
}

func TestIOAvailLoop(t *testing.T) {
	// Canonical echo loop: copy all input to output using IOAvail.
	c := run(t, `
		LDI  R0, 0xFFF0
		MOVE D0, R0
		LDI  R0, 0xFF
		MOVH D0, R0      ; D0 = IOIn
		LDI  R0, 0xFFF1
		MOVE D1, R0
		LDI  R0, 0xFF
		MOVH D1, R0      ; D1 = IOAvail
		LDI  R0, 0xFFF2
		MOVE D2, R0
		LDI  R0, 0xFF
		MOVH D2, R0      ; D2 = IOOut
	loop:
		LDM  R1, [D1]
		LDI  R2, 0
		CMP  R1, R2
		JZ   done
		LDM  R1, [D0]
		STM  R1, [D2]
		JUMP loop
	done:
		HALT
	`, []byte{1, 2, 3, 250})
	if got := c.OutBytes(); len(got) != 4 || got[0] != 1 || got[3] != 250 {
		t.Fatalf("echo: %v", got)
	}
}

func TestCallRet(t *testing.T) {
	c := run(t, `
		LDI  R0, 5
		CALL double
		CALL double
		HALT
	double:
		ADD  R0, R0
		RET
	`, nil)
	if c.R[0] != 20 {
		t.Fatalf("CALL/RET: R0=%d want 20", c.R[0])
	}
}

func TestJumpTable(t *testing.T) {
	// Register-indirect jump through a table in memory.
	c := run(t, `
		LDI  R0, table
		MOVE D0, R0
		LDI  R1, 1       ; select entry 1
		ADD  D0, R1
		LDM  R2, [D0]
		JUMP R2
	entry0:
		LDI  R3, 100
		HALT
	entry1:
		LDI  R3, 200
		HALT
	table:
		.word entry0, entry1
	`, nil)
	if c.R[3] != 200 {
		t.Fatalf("jump table: R3=%d", c.R[3])
	}
}

func TestConditionalJumps(t *testing.T) {
	c := run(t, `
		LDI R0, 10
		LDI R1, 10
		CMP R0, R1
		JNZ fail
		JZ  next1
		JUMP fail
	next1:
		LDI R0, 5
		LDI R1, 9
		CMP R0, R1     ; borrow set
		JNC fail
		JC  next2
		JUMP fail
	next2:
		LDI R2, 1
		HALT
	fail:
		LDI R2, 0
		HALT
	`, nil)
	if c.R[2] != 1 {
		t.Fatal("conditional jumps took wrong path")
	}
}

func TestFibonacci(t *testing.T) {
	c := run(t, `
		LDI R0, 0       ; a
		LDI R1, 1       ; b
		LDI R2, 14      ; count
		LDI R4, 1
	loop:
		MOVE R3, R1
		ADD  R1, R0
		MOVE R0, R3
		SUB  R2, R4
		JNZ  loop
		HALT
	`, nil)
	if c.R[1] != 610 { // fib(15)
		t.Fatalf("fib: %d", c.R[1])
	}
}

func TestStepLimit(t *testing.T) {
	p := MustAssemble("loop: JUMP loop")
	c := NewCPU(1 << 12)
	c.MaxSteps = 100
	if err := c.LoadProgram(0, p.Words); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want step limit, got %v", err)
	}
}

func TestBadMemoryAccess(t *testing.T) {
	c := NewCPU(1 << 8)
	p := MustAssemble(`
		LDI  R0, 0x7FFF
		MOVE D0, R0
		LDM  R1, [D0]
		HALT
	`)
	c.LoadProgram(0, p.Words)
	if err := c.Run(); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("want bad address, got %v", err)
	}
}

func TestBadOpcode(t *testing.T) {
	c := NewCPU(1 << 8)
	c.Mem[0] = Encode(Op(23), 0, 0, 0)
	if err := c.Run(); !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("want bad opcode, got %v", err)
	}
}

func TestLoadProgramBounds(t *testing.T) {
	c := NewCPU(16)
	if err := c.LoadProgram(10, make([]uint16, 10)); !errors.Is(err, ErrBadAddress) {
		t.Fatal("oversized program accepted")
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":  "FROB R0, R1",
		"bad register":      "MOVE R9, R0",
		"missing operand":   "ADD R0",
		"halt with operand": "HALT R0",
		"undefined symbol":  "LDI R0, nowhere_at_all!",
		"dup label":         "a:\na:\nHALT",
		"ldm not pointer":   "LDM R0, [R1]",
		"ldm no brackets":   "LDM R0, D1",
		"mul r7":            "MUL R7, R0",
		"imm range":         "LDI R0, 0x10000",
		"bad directive":     ".frobnicate 3",
		"org backwards":     "HALT\n.org 0",
		"movh to data reg":  "MOVH R0, R1",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled without error", name)
		}
	}
}

func TestAssemblerDirectives(t *testing.T) {
	p := MustAssemble(`
	.equ X, 10
	.equ Y, X+5
		LDI R0, Y        ; 15
		LDI R1, data
		HALT
	data:
		.word 1, 2, X, 'A'
		.space 3, 0xFF
		.ascii "hi"
	`)
	// LDI(2) + LDI(2) + HALT(1) = 5 words before data.
	if p.Labels["data"] != 5 {
		t.Fatalf("data at %d", p.Labels["data"])
	}
	words := p.Words[5:]
	want := []uint16{1, 2, 10, 'A', 0xFF, 0xFF, 0xFF, 'h', 'i'}
	for i, w := range want {
		if words[i] != w {
			t.Fatalf("data[%d]=%#x want %#x", i, words[i], w)
		}
	}
	if p.Words[1] != 15 {
		t.Fatalf("Y evaluated to %d", p.Words[1])
	}
}

func TestAssemblerForwardReference(t *testing.T) {
	p := MustAssemble(`
		JUMP end
		.word 0xDEAD
	end:
		HALT
	`)
	if p.Words[1] != 3 {
		t.Fatalf("forward label resolved to %d", p.Words[1])
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		LDI  R0, 0x1234
		MOVE D0, R0
		MOVH D0, R1
		LDM  R2, [D0]
		STM  R2, [D1]
		ADD  R2, R3
		JZ   0x40
		JUMP R6
		HALT
	`
	p := MustAssemble(src)
	text := Disassemble(0, p.Words)
	for _, want := range []string{"LDI R0, 0x1234", "MOVH D0, R1", "LDM R2, [D0]", "JZ 0x40", "JUMP R6", "HALT"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestRegNameAndPointer(t *testing.T) {
	if RegName(R3) != "R3" || RegName(D2) != "D2" {
		t.Fatal("RegName")
	}
	if IsPointer(R7) || !IsPointer(D0) {
		t.Fatal("IsPointer")
	}
}

func BenchmarkCPUDispatch(b *testing.B) {
	// Tight arithmetic loop — measures raw emulation speed, the baseline
	// for the E8 nested-emulation-overhead experiment.
	p := MustAssemble(`
		LDI R0, 0
		LDI R1, 1
		LDI R2, 0xFFFF
	loop:
		ADD R0, R1
		CMP R0, R2
		JNZ loop
		HALT
	`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCPU(1 << 12)
		c.LoadProgram(0, p.Words)
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(c.Steps))
	}
}
