package dynarisc

import (
	"errors"
	"fmt"
)

// DefaultMemWords sizes the reference CPU's memory: 2^22 words holds the
// largest scan of the evaluation (a 4K cinema frame, one pixel per word)
// with room for buffers.
const DefaultMemWords = 1 << 22

// MaxMemWords bounds memory to the 24-bit pointer range.
const MaxMemWords = 1 << 24

// Execution errors.
var (
	ErrStepLimit  = errors.New("dynarisc: step limit exceeded")
	ErrBadAddress = errors.New("dynarisc: memory access out of range")
	ErrBadOpcode  = errors.New("dynarisc: undefined opcode")
)

// CPU is the reference DynaRisc emulator.
//
// The zero value is unusable; call NewCPU. The CPU is deterministic: the
// same memory image and input stream always produce the same output, which
// the differential tests against the VeRisc-hosted emulator rely on.
type CPU struct {
	R  [8]uint16 // data registers
	D  [4]uint32 // pointer registers (24-bit)
	PC uint16
	Z  bool
	N  bool
	C  bool

	Mem []uint16

	// In is the input stream read through IOIn; Out collects words
	// written to IOOut.
	In    []uint16
	InPos int
	Out   []uint16

	Halted bool
	Steps  uint64
	// MaxSteps aborts runaway programs; 0 means no limit.
	MaxSteps uint64

	// Trace, when set, is invoked before each instruction with the
	// current instruction word (for debugging decoder programs).
	Trace func(c *CPU, instr uint16)

	// dirtyHi is 1 + the highest memory word written through LoadProgram
	// or a store since the last Reset, so Reset clears only touched
	// memory instead of the whole array.
	dirtyHi int
}

// NewCPU returns a CPU with the given memory size in words (0 selects
// DefaultMemWords).
func NewCPU(memWords int) *CPU {
	if memWords <= 0 {
		memWords = DefaultMemWords
	}
	if memWords > MaxMemWords {
		memWords = MaxMemWords
	}
	return &CPU{Mem: make([]uint16, memWords)}
}

// Reset returns the CPU to its power-on state while keeping its
// allocations, so one CPU can decode many frames without rebuilding the
// multi-megabyte memory image each time: registers, flags, PC, the step
// counter and the input cursor are zeroed; memory words written since
// the last Reset (through LoadProgram, Step or Run) are cleared via a
// dirty high-water mark; and Out is truncated in place so its capacity
// is reused. A Reset CPU behaves identically to a fresh NewCPU of the
// same size (reset_test.go pins that, including after an error or a
// step-limit abort). Configuration (MaxSteps, Trace) is preserved.
// Direct writes to Mem bypass the watermark — callers that poke memory
// themselves must also clear it themselves.
func (c *CPU) Reset() {
	c.R = [8]uint16{}
	c.D = [4]uint32{}
	c.PC = 0
	c.Z, c.N, c.C = false, false, false
	clear(c.Mem[:c.dirtyHi])
	c.dirtyHi = 0
	c.In = nil
	c.InPos = 0
	c.Out = c.Out[:0]
	c.Halted = false
	c.Steps = 0
}

// EnsureMem grows memory to at least memWords words (clamped to
// MaxMemWords), preserving contents. It never shrinks, so a reused CPU
// sized for the largest frame seen so far fits every smaller one.
func (c *CPU) EnsureMem(memWords int) {
	if memWords > MaxMemWords {
		memWords = MaxMemWords
	}
	if memWords <= len(c.Mem) {
		return
	}
	grown := make([]uint16, memWords)
	copy(grown, c.Mem)
	c.Mem = grown
}

// ReserveOut grows Out's spare capacity to at least n words, so a run
// with a known output size performs no append growth.
func (c *CPU) ReserveOut(n int) {
	if cap(c.Out)-len(c.Out) >= n {
		return
	}
	grown := make([]uint16, len(c.Out), len(c.Out)+n)
	copy(grown, c.Out)
	c.Out = grown
}

// LoadProgram copies words into memory at org and sets PC to org.
func (c *CPU) LoadProgram(org uint16, words []uint16) error {
	if int(org)+len(words) > len(c.Mem) {
		return fmt.Errorf("%w: program of %d words at %#x", ErrBadAddress, len(words), org)
	}
	copy(c.Mem[org:], words)
	if hi := int(org) + len(words); hi > c.dirtyHi {
		c.dirtyHi = hi
	}
	c.PC = org
	return nil
}

// reg returns the value of register id r (pointer registers full width).
func (c *CPU) reg(r int) uint32 {
	if IsPointer(r) {
		return c.D[r-D0]
	}
	return uint32(c.R[r])
}

// setReg writes v to register id r at the register's width.
func (c *CPU) setReg(r int, v uint32) {
	if IsPointer(r) {
		c.D[r-D0] = v & 0xFFFFFF
	} else {
		c.R[r] = uint16(v)
	}
}

// width returns the operand width in bits for destination register rd.
func width(rd int) uint {
	if IsPointer(rd) {
		return 24
	}
	return 16
}

func (c *CPU) setZN(v uint32, w uint) {
	mask := uint32(1)<<w - 1
	v &= mask
	c.Z = v == 0
	c.N = v>>(w-1)&1 == 1
}

// fetch reads the next code word.
func (c *CPU) fetch() uint16 {
	w := c.Mem[c.PC]
	c.PC++
	return w
}

// load reads a data word, honouring the memory-mapped I/O window.
func (c *CPU) load(addr uint32) (uint16, error) {
	switch addr {
	case IOIn:
		if c.InPos < len(c.In) {
			v := c.In[c.InPos]
			c.InPos++
			return v, nil
		}
		return 0, nil
	case IOAvail:
		if c.InPos < len(c.In) {
			return 1, nil
		}
		return 0, nil
	}
	if int(addr) >= len(c.Mem) {
		return 0, fmt.Errorf("%w: load %#x", ErrBadAddress, addr)
	}
	return c.Mem[addr], nil
}

// store writes a data word, honouring the memory-mapped I/O window.
func (c *CPU) store(addr uint32, v uint16) error {
	if addr == IOOut {
		c.Out = append(c.Out, v)
		return nil
	}
	if int(addr) >= len(c.Mem) {
		return fmt.Errorf("%w: store %#x", ErrBadAddress, addr)
	}
	c.Mem[addr] = v
	if int(addr) >= c.dirtyHi {
		c.dirtyHi = int(addr) + 1
	}
	return nil
}

// shiftResult computes the final value and carry of count one-bit
// LSL/LSR/ASR/ROR steps on v at width w in O(1). The reference semantics
// are the per-bit loop (shift by one, set C from the bit shifted out,
// repeat); carrySet reports whether that loop would have touched C at
// all (count > 0). Counts run 0..31 and may exceed the width, in which
// case LSL saturates to 0, LSR to 0, ASR to the replicated sign, and ROR
// wraps modulo w — exactly what iterating the one-bit step yields.
func shiftResult(op Op, v uint32, count int, w uint) (res uint32, carry, carrySet bool) {
	mask := uint32(1)<<w - 1
	v &= mask
	if count == 0 {
		return v, false, false
	}
	uc := uint(count)
	switch op {
	case LSL:
		if uc > w {
			return 0, false, true
		}
		carry = v>>(w-uc)&1 == 1
		if uc == w {
			return 0, carry, true
		}
		return v << uc & mask, carry, true
	case LSR:
		// v < 2^w, so bits past the top read as 0 for uc >= w.
		return v >> uc, v>>(uc-1)&1 == 1, true
	case ASR:
		sign := v >> (w - 1) & 1
		if uc >= w {
			if sign == 1 {
				return mask, true, true
			}
			return 0, false, true
		}
		res = v >> uc
		if sign == 1 {
			res |= mask &^ (mask >> uc)
		}
		return res, v>>(uc-1)&1 == 1, true
	default: // ROR
		carry = v>>((uc-1)%w)&1 == 1
		if r := uc % w; r != 0 {
			v = (v>>r | v<<(w-r)) & mask
		}
		return v, carry, true
	}
}

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.Halted {
		return nil
	}
	if c.MaxSteps > 0 && c.Steps >= c.MaxSteps {
		return ErrStepLimit
	}
	instr := c.Mem[c.PC]
	if c.Trace != nil {
		c.Trace(c, instr)
	}
	c.Steps++
	c.PC++
	op, rd, rs, mode := Decode(instr)

	switch op {
	case HALT:
		c.Halted = true

	case MOVE:
		if mode&1 == 1 { // MOVH Dd, Rs
			if !IsPointer(rd) {
				return fmt.Errorf("dynarisc: MOVH needs pointer destination (pc=%#x)", c.PC-1)
			}
			d := rd - D0
			c.D[d] = c.D[d]&0xFFFF | (c.reg(rs)&0xFF)<<16
		} else {
			c.setReg(rd, c.reg(rs))
		}

	case LDI:
		c.setReg(rd, uint32(c.fetch()))

	case LDM:
		if !IsPointer(rs) {
			return fmt.Errorf("dynarisc: LDM needs pointer source (pc=%#x)", c.PC-1)
		}
		v, err := c.load(c.reg(rs))
		if err != nil {
			return err
		}
		c.setReg(rd, uint32(v))

	case STM:
		if !IsPointer(rs) {
			return fmt.Errorf("dynarisc: STM needs pointer destination (pc=%#x)", c.PC-1)
		}
		if err := c.store(c.reg(rs), uint16(c.reg(rd))); err != nil {
			return err
		}

	case ADD, ADC, SUB, SBB, CMP:
		w := width(rd)
		mask := uint32(1)<<w - 1
		a := c.reg(rd) & mask
		b := c.reg(rs) & mask
		var res uint32
		switch op {
		case ADD, ADC:
			res = a + b
			if op == ADC && c.C {
				res++
			}
			c.C = res > mask
		default: // SUB, SBB, CMP
			borrow := uint32(0)
			if op == SBB && c.C {
				borrow = 1
			}
			res = a - b - borrow
			c.C = a < b+borrow // borrow out
		}
		res &= mask
		c.setZN(res, w)
		if op != CMP {
			c.setReg(rd, res)
		}

	case MUL:
		p := (c.reg(rd) & 0xFFFF) * (c.reg(rs) & 0xFFFF)
		lo, hi := uint16(p), uint16(p>>16)
		c.setReg(rd, uint32(lo))
		c.R[7] = hi
		c.C = hi != 0
		c.setZN(uint32(lo), 16)

	case AND, OR, XOR:
		w := width(rd)
		mask := uint32(1)<<w - 1
		a := c.reg(rd) & mask
		b := c.reg(rs) & mask
		var res uint32
		switch op {
		case AND:
			res = a & b
		case OR:
			res = a | b
		default:
			res = a ^ b
		}
		c.setReg(rd, res)
		c.setZN(res, w)

	case LSL, LSR, ASR, ROR:
		w := width(rd)
		res, carry, carrySet := shiftResult(op, c.reg(rd), int(c.reg(rs)&31), w)
		if carrySet {
			c.C = carry
		}
		c.setReg(rd, res)
		c.setZN(res, w)

	case JUMP, JZ, JNZ, JC, JNC:
		var target uint16
		if mode&1 == 1 {
			target = uint16(c.reg(rd))
		} else {
			target = c.fetch()
		}
		taken := false
		switch op {
		case JUMP:
			taken = true
		case JZ:
			taken = c.Z
		case JNZ:
			taken = !c.Z
		case JC:
			taken = c.C
		case JNC:
			taken = !c.C
		}
		if taken {
			c.PC = target
		}

	default:
		return fmt.Errorf("%w: %d at pc=%#x", ErrBadOpcode, op, c.PC-1)
	}
	return nil
}

// Run executes until HALT, an error, or the step limit.
//
// Run is the throughput path, built like verisc.Run: it inlines
// fetch/decode and the direct-memory fast paths of LDI/LDM/STM, hoists
// the Trace and MaxSteps checks out of the per-instruction common case
// (a set Trace falls back to the Step loop; the step budget becomes a
// pre-resolved local limit) and keeps no error formatting on the hot
// path. Semantics are identical to calling Step in a loop — the
// differential tests in run_test.go and internal/dynprog pin that
// equivalence on the archived decoder programs.
func (c *CPU) Run() error {
	if c.Trace != nil {
		for !c.Halted {
			if err := c.Step(); err != nil {
				return err
			}
		}
		return nil
	}

	mem := c.Mem
	memLen := uint32(len(mem))
	limit := ^uint64(0)
	if c.MaxSteps > 0 {
		limit = c.MaxSteps
	}
	pc := c.PC
	steps := c.Steps

	for !c.Halted {
		if steps >= limit {
			c.PC, c.Steps = pc, steps
			return ErrStepLimit
		}
		instr := mem[pc]
		steps++
		pc++
		op, rd, rs, mode := Decode(instr)

		switch op {
		case HALT:
			c.Halted = true

		case MOVE:
			if mode&1 == 1 { // MOVH Dd, Rs
				if !IsPointer(rd) {
					c.PC, c.Steps = pc, steps
					return fmt.Errorf("dynarisc: MOVH needs pointer destination (pc=%#x)", pc-1)
				}
				d := rd - D0
				c.D[d] = c.D[d]&0xFFFF | (c.reg(rs)&0xFF)<<16
			} else {
				c.setReg(rd, c.reg(rs))
			}

		case LDI:
			c.setReg(rd, uint32(mem[pc]))
			pc++

		case LDM:
			if !IsPointer(rs) {
				c.PC, c.Steps = pc, steps
				return fmt.Errorf("dynarisc: LDM needs pointer source (pc=%#x)", pc-1)
			}
			addr := c.D[rs-D0]
			// Direct-memory fast path. The I/O window starts at IOIn, so
			// any lower in-range address is a plain memory read even when
			// memory spans the full 24-bit range.
			if addr < IOIn && addr < memLen {
				c.setReg(rd, uint32(mem[addr]))
				continue
			}
			v, err := c.load(addr)
			if err != nil {
				c.PC, c.Steps = pc, steps
				return err
			}
			c.setReg(rd, uint32(v))

		case STM:
			if !IsPointer(rs) {
				c.PC, c.Steps = pc, steps
				return fmt.Errorf("dynarisc: STM needs pointer destination (pc=%#x)", pc-1)
			}
			addr := c.D[rs-D0]
			v := uint16(c.reg(rd))
			if addr != IOOut && addr < memLen {
				mem[addr] = v
				if int(addr) >= c.dirtyHi {
					c.dirtyHi = int(addr) + 1
				}
				continue
			}
			if err := c.store(addr, v); err != nil {
				c.PC, c.Steps = pc, steps
				return err
			}

		case ADD, ADC, SUB, SBB, CMP:
			w := width(rd)
			mask := uint32(1)<<w - 1
			a := c.reg(rd) & mask
			b := c.reg(rs) & mask
			var res uint32
			switch op {
			case ADD, ADC:
				res = a + b
				if op == ADC && c.C {
					res++
				}
				c.C = res > mask
			default: // SUB, SBB, CMP
				borrow := uint32(0)
				if op == SBB && c.C {
					borrow = 1
				}
				res = a - b - borrow
				c.C = a < b+borrow // borrow out
			}
			res &= mask
			c.setZN(res, w)
			if op != CMP {
				c.setReg(rd, res)
			}

		case MUL:
			p := (c.reg(rd) & 0xFFFF) * (c.reg(rs) & 0xFFFF)
			lo, hi := uint16(p), uint16(p>>16)
			c.setReg(rd, uint32(lo))
			c.R[7] = hi
			c.C = hi != 0
			c.setZN(uint32(lo), 16)

		case AND, OR, XOR:
			w := width(rd)
			mask := uint32(1)<<w - 1
			a := c.reg(rd) & mask
			b := c.reg(rs) & mask
			var res uint32
			switch op {
			case AND:
				res = a & b
			case OR:
				res = a | b
			default:
				res = a ^ b
			}
			c.setReg(rd, res)
			c.setZN(res, w)

		case LSL, LSR, ASR, ROR:
			w := width(rd)
			res, carry, carrySet := shiftResult(op, c.reg(rd), int(c.reg(rs)&31), w)
			if carrySet {
				c.C = carry
			}
			c.setReg(rd, res)
			c.setZN(res, w)

		case JUMP, JZ, JNZ, JC, JNC:
			var target uint16
			if mode&1 == 1 {
				target = uint16(c.reg(rd))
			} else {
				target = mem[pc]
				pc++
			}
			taken := false
			switch op {
			case JUMP:
				taken = true
			case JZ:
				taken = c.Z
			case JNZ:
				taken = !c.Z
			case JC:
				taken = c.C
			case JNC:
				taken = !c.C
			}
			if taken {
				pc = target
			}

		default:
			c.PC, c.Steps = pc, steps
			return fmt.Errorf("%w: %d at pc=%#x", ErrBadOpcode, op, pc-1)
		}
	}
	c.PC, c.Steps = pc, steps
	return nil
}

// OutBytes returns the output stream as bytes (low byte of each word) —
// the convention decoder programs use for byte streams.
func (c *CPU) OutBytes() []byte {
	return c.AppendOutBytes(make([]byte, 0, len(c.Out)))
}

// AppendOutBytes appends the output stream to dst as bytes (low byte of
// each word) and returns the extended slice — the companion to OutBytes
// for callers that reuse buffers across runs. Growth happens at most
// once, sized for the whole stream.
func (c *CPU) AppendOutBytes(dst []byte) []byte {
	if need := len(dst) + len(c.Out); cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for _, w := range c.Out {
		dst = append(dst, byte(w))
	}
	return dst
}

// SetInBytes loads the input stream from bytes, one per word.
func (c *CPU) SetInBytes(p []byte) {
	c.In = AppendInWords(make([]uint16, 0, len(p)), p)
	c.InPos = 0
}

// AppendInWords appends p to dst one byte per word — the input-side
// companion to AppendOutBytes for callers that assemble reusable input
// streams instead of SetInBytes' fresh slice.
func AppendInWords(dst []uint16, p []byte) []uint16 {
	for _, b := range p {
		dst = append(dst, uint16(b))
	}
	return dst
}
