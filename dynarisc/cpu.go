package dynarisc

import (
	"errors"
	"fmt"
)

// DefaultMemWords sizes the reference CPU's memory: 2^22 words holds the
// largest scan of the evaluation (a 4K cinema frame, one pixel per word)
// with room for buffers.
const DefaultMemWords = 1 << 22

// MaxMemWords bounds memory to the 24-bit pointer range.
const MaxMemWords = 1 << 24

// Execution errors.
var (
	ErrStepLimit  = errors.New("dynarisc: step limit exceeded")
	ErrBadAddress = errors.New("dynarisc: memory access out of range")
	ErrBadOpcode  = errors.New("dynarisc: undefined opcode")
)

// CPU is the reference DynaRisc emulator.
//
// The zero value is unusable; call NewCPU. The CPU is deterministic: the
// same memory image and input stream always produce the same output, which
// the differential tests against the VeRisc-hosted emulator rely on.
type CPU struct {
	R  [8]uint16 // data registers
	D  [4]uint32 // pointer registers (24-bit)
	PC uint16
	Z  bool
	N  bool
	C  bool

	Mem []uint16

	// In is the input stream read through IOIn; Out collects words
	// written to IOOut.
	In    []uint16
	InPos int
	Out   []uint16

	Halted bool
	Steps  uint64
	// MaxSteps aborts runaway programs; 0 means no limit.
	MaxSteps uint64

	// Trace, when set, is invoked before each instruction with the
	// current instruction word (for debugging decoder programs).
	Trace func(c *CPU, instr uint16)
}

// NewCPU returns a CPU with the given memory size in words (0 selects
// DefaultMemWords).
func NewCPU(memWords int) *CPU {
	if memWords <= 0 {
		memWords = DefaultMemWords
	}
	if memWords > MaxMemWords {
		memWords = MaxMemWords
	}
	return &CPU{Mem: make([]uint16, memWords)}
}

// LoadProgram copies words into memory at org and sets PC to org.
func (c *CPU) LoadProgram(org uint16, words []uint16) error {
	if int(org)+len(words) > len(c.Mem) {
		return fmt.Errorf("%w: program of %d words at %#x", ErrBadAddress, len(words), org)
	}
	copy(c.Mem[org:], words)
	c.PC = org
	return nil
}

// reg returns the value of register id r (pointer registers full width).
func (c *CPU) reg(r int) uint32 {
	if IsPointer(r) {
		return c.D[r-D0]
	}
	return uint32(c.R[r])
}

// setReg writes v to register id r at the register's width.
func (c *CPU) setReg(r int, v uint32) {
	if IsPointer(r) {
		c.D[r-D0] = v & 0xFFFFFF
	} else {
		c.R[r] = uint16(v)
	}
}

// width returns the operand width in bits for destination register rd.
func width(rd int) uint {
	if IsPointer(rd) {
		return 24
	}
	return 16
}

func (c *CPU) setZN(v uint32, w uint) {
	mask := uint32(1)<<w - 1
	v &= mask
	c.Z = v == 0
	c.N = v>>(w-1)&1 == 1
}

// fetch reads the next code word.
func (c *CPU) fetch() uint16 {
	w := c.Mem[c.PC]
	c.PC++
	return w
}

// load reads a data word, honouring the memory-mapped I/O window.
func (c *CPU) load(addr uint32) (uint16, error) {
	switch addr {
	case IOIn:
		if c.InPos < len(c.In) {
			v := c.In[c.InPos]
			c.InPos++
			return v, nil
		}
		return 0, nil
	case IOAvail:
		if c.InPos < len(c.In) {
			return 1, nil
		}
		return 0, nil
	}
	if int(addr) >= len(c.Mem) {
		return 0, fmt.Errorf("%w: load %#x", ErrBadAddress, addr)
	}
	return c.Mem[addr], nil
}

// store writes a data word, honouring the memory-mapped I/O window.
func (c *CPU) store(addr uint32, v uint16) error {
	if addr == IOOut {
		c.Out = append(c.Out, v)
		return nil
	}
	if int(addr) >= len(c.Mem) {
		return fmt.Errorf("%w: store %#x", ErrBadAddress, addr)
	}
	c.Mem[addr] = v
	return nil
}

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.Halted {
		return nil
	}
	if c.MaxSteps > 0 && c.Steps >= c.MaxSteps {
		return ErrStepLimit
	}
	instr := c.Mem[c.PC]
	if c.Trace != nil {
		c.Trace(c, instr)
	}
	c.Steps++
	c.PC++
	op, rd, rs, mode := Decode(instr)

	switch op {
	case HALT:
		c.Halted = true

	case MOVE:
		if mode&1 == 1 { // MOVH Dd, Rs
			if !IsPointer(rd) {
				return fmt.Errorf("dynarisc: MOVH needs pointer destination (pc=%#x)", c.PC-1)
			}
			d := rd - D0
			c.D[d] = c.D[d]&0xFFFF | (c.reg(rs)&0xFF)<<16
		} else {
			c.setReg(rd, c.reg(rs))
		}

	case LDI:
		c.setReg(rd, uint32(c.fetch()))

	case LDM:
		if !IsPointer(rs) {
			return fmt.Errorf("dynarisc: LDM needs pointer source (pc=%#x)", c.PC-1)
		}
		v, err := c.load(c.reg(rs))
		if err != nil {
			return err
		}
		c.setReg(rd, uint32(v))

	case STM:
		if !IsPointer(rs) {
			return fmt.Errorf("dynarisc: STM needs pointer destination (pc=%#x)", c.PC-1)
		}
		if err := c.store(c.reg(rs), uint16(c.reg(rd))); err != nil {
			return err
		}

	case ADD, ADC, SUB, SBB, CMP:
		w := width(rd)
		mask := uint32(1)<<w - 1
		a := c.reg(rd) & mask
		b := c.reg(rs) & mask
		var res uint32
		switch op {
		case ADD, ADC:
			res = a + b
			if op == ADC && c.C {
				res++
			}
			c.C = res > mask
		default: // SUB, SBB, CMP
			borrow := uint32(0)
			if op == SBB && c.C {
				borrow = 1
			}
			res = a - b - borrow
			c.C = a < b+borrow // borrow out
		}
		res &= mask
		c.setZN(res, w)
		if op != CMP {
			c.setReg(rd, res)
		}

	case MUL:
		p := (c.reg(rd) & 0xFFFF) * (c.reg(rs) & 0xFFFF)
		lo, hi := uint16(p), uint16(p>>16)
		c.setReg(rd, uint32(lo))
		c.R[7] = hi
		c.C = hi != 0
		c.setZN(uint32(lo), 16)

	case AND, OR, XOR:
		w := width(rd)
		mask := uint32(1)<<w - 1
		a := c.reg(rd) & mask
		b := c.reg(rs) & mask
		var res uint32
		switch op {
		case AND:
			res = a & b
		case OR:
			res = a | b
		default:
			res = a ^ b
		}
		c.setReg(rd, res)
		c.setZN(res, w)

	case LSL, LSR, ASR, ROR:
		w := width(rd)
		mask := uint32(1)<<w - 1
		v := c.reg(rd) & mask
		count := int(c.reg(rs) & 31)
		for i := 0; i < count; i++ {
			switch op {
			case LSL:
				c.C = v>>(w-1)&1 == 1
				v = v << 1 & mask
			case LSR:
				c.C = v&1 == 1
				v >>= 1
			case ASR:
				c.C = v&1 == 1
				sign := v >> (w - 1) & 1
				v = v>>1 | sign<<(w-1)
			case ROR:
				bit := v & 1
				c.C = bit == 1
				v = v>>1 | bit<<(w-1)
			}
		}
		c.setReg(rd, v)
		c.setZN(v, w)

	case JUMP, JZ, JNZ, JC, JNC:
		var target uint16
		if mode&1 == 1 {
			target = uint16(c.reg(rd))
		} else {
			target = c.fetch()
		}
		taken := false
		switch op {
		case JUMP:
			taken = true
		case JZ:
			taken = c.Z
		case JNZ:
			taken = !c.Z
		case JC:
			taken = c.C
		case JNC:
			taken = !c.C
		}
		if taken {
			c.PC = target
		}

	default:
		return fmt.Errorf("%w: %d at pc=%#x", ErrBadOpcode, op, c.PC-1)
	}
	return nil
}

// Run executes until HALT, an error, or the step limit.
func (c *CPU) Run() error {
	for !c.Halted {
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// OutBytes returns the output stream as bytes (low byte of each word) —
// the convention decoder programs use for byte streams.
func (c *CPU) OutBytes() []byte {
	out := make([]byte, len(c.Out))
	for i, w := range c.Out {
		out[i] = byte(w)
	}
	return out
}

// SetInBytes loads the input stream from bytes, one per word.
func (c *CPU) SetInBytes(p []byte) {
	c.In = make([]uint16, len(p))
	for i, b := range p {
		c.In[i] = uint16(b)
	}
	c.InPos = 0
}
