// Package dynarisc implements DynaRisc, the 16-bit, 23-instruction RISC
// software processor at the core of Olonys (§3.2, Table 1 of the paper).
//
// DynaRisc is not a real processor: it is a fixed, never-extended virtual
// ISA that layout decoders are written against, so that the decoders can
// be archived as instruction streams and executed decades later by any
// emulator implementing this specification. The package provides the ISA
// definition, an assembler, a disassembler and a reference CPU; the
// archived restoration path instead runs DynaRisc inside the VeRisc
// emulator (package verisc and internal/nested).
//
// # Architecture
//
//   - Eight 16-bit data registers R0..R7 and four 24-bit pointer registers
//     D0..D3. Register-to-register instructions accept both kinds; the
//     destination's width governs the arithmetic.
//   - Word-addressed memory of 16-bit words (size configurable, up to
//     2^24 words so a 4K film scan fits as one pixel-per-word buffer).
//   - Flags Z (zero), N (negative/msb), C (carry/borrow).
//   - Code lives in the low 64 Ki words (jump targets are 16-bit).
//   - Memory-mapped I/O: reading IOIn pops one input word, IOAvail reads 1
//     while input remains, writing IOOut appends an output word.
//   - MUL writes the low product word to Rd and the high word to R7
//     (MIPS-style HI register convention); C is set if the high word is
//     nonzero.
//
// # Encoding
//
// Instructions are one or two words:
//
//	word 0:  op[15:11] rd[10:7] rs[6:3] mode[2:0]
//	word 1:  immediate (LDI and absolute jumps only)
//
// Register ids: 0..7 = R0..R7, 8..11 = D0..D3. mode 1 selects the variant
// of MOVE (MOVH: load the high byte of a pointer register) and of the jump
// family (register-indirect target in Rd).
package dynarisc

import "fmt"

// Op is a DynaRisc opcode. There are exactly 23 (OpCount); Table 1 of the
// paper names seventeen of them, the remainder are the conventional
// complements (ADD, conditional jumps, HALT).
type Op uint8

const (
	HALT Op = iota
	MOVE    // MOVE Rd, Rs (mode 1 = MOVH Dd, Rs)
	LDI     // LDI Rd, #imm
	LDM     // LDM Rd, [Ds]
	STM     // STM Rs, [Dd]
	ADD     // ADD Rd, Rs
	ADC     // ADC Rd, Rs (adds carry)
	SUB     // SUB Rd, Rs
	SBB     // SBB Rd, Rs (subtracts borrow)
	CMP     // CMP Rd, Rs (SUB without writeback)
	MUL     // MUL Rd, Rs (lo→Rd, hi→R7)
	AND     // AND Rd, Rs
	OR      // OR Rd, Rs
	XOR     // XOR Rd, Rs
	LSL     // LSL Rd, Rs
	LSR     // LSR Rd, Rs
	ASR     // ASR Rd, Rs
	ROR     // ROR Rd, Rs
	JUMP    // JUMP addr | JUMP Rd (mode 1)
	JZ      // JZ addr | JZ Rd
	JNZ     // JNZ addr | JNZ Rd
	JC      // JC addr | JC Rd
	JNC     // JNC addr | JNC Rd

	// OpCount is the ISA size: exactly 23, fixed forever (§3.2).
	OpCount = 23
)

var opNames = [OpCount]string{
	"HALT", "MOVE", "LDI", "LDM", "STM", "ADD", "ADC", "SUB", "SBB",
	"CMP", "MUL", "AND", "OR", "XOR", "LSL", "LSR", "ASR", "ROR",
	"JUMP", "JZ", "JNZ", "JC", "JNC",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Memory-mapped I/O addresses (outside any configurable memory size).
const (
	IOIn    = 0xFFFFF0 // LDM pops the next input word (0 at EOF)
	IOAvail = 0xFFFFF1 // LDM reads 1 while input remains, else 0
	IOOut   = 0xFFFFF2 // STM appends an output word
)

// Register ids.
const (
	R0 = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	D0
	D1
	D2
	D3
	NumRegs
)

// RegName returns the assembler name of register id r.
func RegName(r int) string {
	switch {
	case r >= R0 && r <= R7:
		return fmt.Sprintf("R%d", r)
	case r >= D0 && r <= D3:
		return fmt.Sprintf("D%d", r-D0)
	default:
		return fmt.Sprintf("reg(%d)", r)
	}
}

// IsPointer reports whether register id r is a 24-bit pointer register.
func IsPointer(r int) bool { return r >= D0 && r < NumRegs }

// Encode packs an instruction word.
func Encode(op Op, rd, rs, mode int) uint16 {
	return uint16(op)<<11 | uint16(rd&15)<<7 | uint16(rs&15)<<3 | uint16(mode&7)
}

// Decode unpacks an instruction word.
func Decode(w uint16) (op Op, rd, rs, mode int) {
	return Op(w >> 11), int(w >> 7 & 15), int(w >> 3 & 15), int(w & 7)
}

// HasImmediate reports whether the opcode (with the given mode) consumes a
// second instruction word.
func HasImmediate(op Op, mode int) bool {
	switch op {
	case LDI:
		return true
	case JUMP, JZ, JNZ, JC, JNC:
		return mode&1 == 0
	default:
		return false
	}
}

// ISAClass labels an instruction class for the Table 1 listing.
type ISAClass string

// Table 1 classes.
const (
	ClassArithmetic ISAClass = "Arithmetic"
	ClassLogical    ISAClass = "Logical"
	ClassControl    ISAClass = "Control/Data"
)

// ClassOf returns the Table 1 class of an opcode.
func ClassOf(op Op) ISAClass {
	switch op {
	case ADD, ADC, SUB, SBB, CMP, MUL:
		return ClassArithmetic
	case AND, OR, XOR, LSL, LSR, ASR, ROR:
		return ClassLogical
	default:
		return ClassControl
	}
}

// ISAEntry is one row of the instruction table.
type ISAEntry struct {
	Op       Op
	Class    ISAClass
	Syntax   string
	InTable1 bool // named explicitly in Table 1 of the paper
}

// ISATable returns the full 23-instruction listing (reproducing Table 1
// plus the six instructions the paper leaves implicit).
func ISATable() []ISAEntry {
	syntax := map[Op]string{
		HALT: "HALT", MOVE: "MOVE Rd, Rs", LDI: "LDI Rd, #imm",
		LDM: "LDM Rd, [Ds]", STM: "STM Rs, [Dd]",
		ADD: "ADD Rd, Rs", ADC: "ADC(carry) Rd, Rs", SUB: "SUB Rd, Rs",
		SBB: "SBB(borrow) Rd, Rs", CMP: "CMP Rd, Rs", MUL: "MUL Rd, Rs",
		AND: "AND Rd, Rs", OR: "OR Rd, Rs", XOR: "XOR Rd, Rs",
		LSL: "LSL Rd, Rs", LSR: "LSR Rd, Rs", ASR: "ASR Rd, Rs",
		ROR: "ROR Rd, Rs", JUMP: "JUMP address", JZ: "JZ address",
		JNZ: "JNZ address", JC: "JC address", JNC: "JNC address",
	}
	table1 := map[Op]bool{
		ADC: true, SBB: true, SUB: true, CMP: true, MUL: true,
		AND: true, OR: true, XOR: true, LSL: true, LSR: true,
		ASR: true, ROR: true, MOVE: true, LDI: true, LDM: true,
		STM: true, JUMP: true,
	}
	out := make([]ISAEntry, 0, OpCount)
	for op := Op(0); op < OpCount; op++ {
		out = append(out, ISAEntry{
			Op: op, Class: ClassOf(op), Syntax: syntax[op], InTable1: table1[op],
		})
	}
	return out
}
