package dynarisc

import (
	"errors"
	"testing"
	"testing/quick"
)

// stateEqual compares every piece of architecturally visible state.
func stateEqual(a, b *CPU) bool {
	if a.R != b.R || a.D != b.D || a.PC != b.PC {
		return false
	}
	if a.Z != b.Z || a.N != b.N || a.C != b.C {
		return false
	}
	if a.Halted != b.Halted || a.Steps != b.Steps || a.InPos != b.InPos {
		return false
	}
	if len(a.Out) != len(b.Out) {
		return false
	}
	for i := range a.Out {
		if a.Out[i] != b.Out[i] {
			return false
		}
	}
	if len(a.Mem) != len(b.Mem) {
		return false
	}
	for i := range a.Mem {
		if a.Mem[i] != b.Mem[i] {
			return false
		}
	}
	return true
}

// stepLoop drives a CPU with Step until halt or error, like Run's
// documented reference semantics.
func stepLoop(c *CPU) error {
	for !c.Halted {
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// TestRunMatchesStepProgram pins Run ≡ Step-loop on a program exercising
// every instruction class, including I/O and shifts by register counts
// larger than the operand width.
func TestRunMatchesStepProgram(t *testing.T) {
	src := `
	        LDI  R0, 0xFFF0
	        MOVE D0, R0
	        LDI  R0, 0xFF
	        MOVH D0, R0      ; D0 = IOIn
	        LDI  R0, 0xFFF2
	        MOVE D2, R0
	        LDI  R0, 0xFF
	        MOVH D2, R0      ; D2 = IOOut
	        LDI  R0, 0xFFF1
	        MOVE D1, R0
	        LDI  R0, 0xFF
	        MOVH D1, R0      ; D1 = IOAvail
	        LDI  R1, 3
	loop:   LDM  R0, [D1]    ; input left?
	        LDI  R3, 0
	        CMP  R0, R3
	        JZ   done
	        LDM  R0, [D0]    ; pop input
	        LDI  R2, 0x1234
	        MUL  R2, R0
	        ADC  R2, R7
	        LSL  R2, R1
	        ROR  R2, R1
	        LDI  R3, 29
	        LSR  R2, R3      ; count > width
	        ASR  R0, R1
	        XOR  R2, R0
	        STM  R2, [D2]    ; emit
	        LDI  R3, 100
	        MOVE D3, R3
	        STM  R2, [D3]    ; plain memory store
	        JUMP loop
	done:   HALT
	`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *CPU {
		c := NewCPU(1 << 12)
		if err := c.LoadProgram(p.Org, p.Words); err != nil {
			t.Fatal(err)
		}
		c.In = []uint16{3, 1, 4, 1, 5, 9, 2, 6, 8}
		c.MaxSteps = 100_000
		return c
	}

	fast := mk()
	if err := fast.Run(); err != nil {
		t.Fatal(err)
	}
	slow := mk()
	if err := stepLoop(slow); err != nil {
		t.Fatal(err)
	}
	if !stateEqual(fast, slow) {
		t.Fatalf("state divergence:\nrun:  %+v\nstep: %+v", fast, slow)
	}
	if len(fast.Out) == 0 {
		t.Fatal("program produced no output; test is vacuous")
	}
}

// TestRunStepEquivalenceProperty drives random instruction soups through
// both execution paths; whatever happens (halt, error, step limit) must
// happen identically — registers, flags, memory, I/O and step counts.
// Memory spans the full 16-bit PC range so the soup can never walk off
// the end of the code image.
func TestRunStepEquivalenceProperty(t *testing.T) {
	f := func(words []uint16, in []uint16) bool {
		// Clamp register fields to architecturally valid ids (0..11):
		// id 12..15 panics identically on both paths, which would abort
		// the comparison rather than exercise it.
		for i, w := range words {
			op, rd, rs, mode := Decode(w)
			words[i] = Encode(op, rd%NumRegs, rs%NumRegs, mode)
		}
		mk := func() *CPU {
			c := NewCPU(1 << 16)
			copy(c.Mem, words)
			c.In = append([]uint16(nil), in...)
			c.MaxSteps = 3000
			return c
		}
		run := mk()
		runErr := run.Run()
		step := mk()
		stepErr := stepLoop(step)

		if (runErr == nil) != (stepErr == nil) {
			return false
		}
		if runErr != nil && runErr.Error() != stepErr.Error() {
			return false
		}
		return stateEqual(run, step)
	}
	cfg := &quick.Config{MaxCount: 80}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRunTraceFallback checks that a set Trace hook still sees every
// instruction (Run falls back to the Step loop) with unchanged results.
func TestRunTraceFallback(t *testing.T) {
	src := `
	        LDI  R0, 5
	        LDI  R1, 1
	loop:   SUB  R0, R1
	        JNZ  loop
	        HALT
	`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCPU(1 << 10)
	if err := c.LoadProgram(p.Org, p.Words); err != nil {
		t.Fatal(err)
	}
	traced := 0
	c.Trace = func(*CPU, uint16) { traced++ }
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if uint64(traced) != c.Steps {
		t.Fatalf("trace saw %d instructions, CPU stepped %d", traced, c.Steps)
	}
	if !c.Halted || c.R[0] != 0 {
		t.Fatalf("traced run diverged: halted=%v R0=%d", c.Halted, c.R[0])
	}
}

// TestRunStepLimit checks the hoisted budget check still aborts exactly
// at the limit on both paths.
func TestRunStepLimit(t *testing.T) {
	mk := func() *CPU {
		c := NewCPU(64)
		// JUMP 0 forever.
		c.Mem[0] = Encode(JUMP, 0, 0, 0)
		c.Mem[1] = 0
		c.MaxSteps = 500
		return c
	}
	run := mk()
	if err := run.Run(); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("run: got %v, want step limit", err)
	}
	step := mk()
	if err := stepLoop(step); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("step: got %v, want step limit", err)
	}
	if run.Steps != 500 || step.Steps != 500 {
		t.Fatalf("steps at abort: run %d step %d, want 500", run.Steps, step.Steps)
	}
}

// TestShiftResultMatchesBitLoop exhaustively cross-checks the O(1) shift
// against the per-bit reference for every opcode, width and count.
func TestShiftResultMatchesBitLoop(t *testing.T) {
	ref := func(op Op, v uint32, count int, w uint) (uint32, bool, bool) {
		mask := uint32(1)<<w - 1
		v &= mask
		carry, set := false, false
		for i := 0; i < count; i++ {
			set = true
			switch op {
			case LSL:
				carry = v>>(w-1)&1 == 1
				v = v << 1 & mask
			case LSR:
				carry = v&1 == 1
				v >>= 1
			case ASR:
				carry = v&1 == 1
				sign := v >> (w - 1) & 1
				v = v>>1 | sign<<(w-1)
			case ROR:
				bit := v & 1
				carry = bit == 1
				v = v>>1 | bit<<(w-1)
			}
		}
		return v, carry, set
	}
	values := []uint32{0, 1, 2, 0x5555, 0x8000, 0xFFFF, 0x800000, 0xABCDEF, 0xFFFFFF}
	for _, op := range []Op{LSL, LSR, ASR, ROR} {
		for _, w := range []uint{16, 24} {
			for _, v := range values {
				for count := 0; count <= 31; count++ {
					gotV, gotC, gotSet := shiftResult(op, v, count, w)
					wantV, wantC, wantSet := ref(op, v, count, w)
					if gotV != wantV || gotC != wantC || gotSet != wantSet {
						t.Fatalf("%v v=%#x count=%d w=%d: got (%#x,%v,%v) want (%#x,%v,%v)",
							op, v, count, w, gotV, gotC, gotSet, wantV, wantC, wantSet)
					}
				}
			}
		}
	}
}
