package dynarisc

import (
	"errors"
	"testing"
)

// resetProg stores to memory, reads input, emits output and halts — it
// dirties every kind of state Reset must clear.
func resetProg(t *testing.T) *Program {
	t.Helper()
	p, err := Assemble(`
	        LDI  R0, 0xFFF0
	        MOVE D0, R0
	        LDI  R0, 0xFF
	        MOVH D0, R0      ; D0 = IOIn
	        LDI  R0, 0xFFF2
	        MOVE D2, R0
	        LDI  R0, 0xFF
	        MOVH D2, R0      ; D2 = IOOut
	        LDI  R3, 2000
	        MOVE D1, R3
	        LDM  R1, [D0]
	        STM  R1, [D1]    ; dirty high memory
	        MUL  R1, R1
	        STM  R1, [D2]
	        STM  R7, [D2]
	        HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runOnce(t *testing.T, c *CPU, p *Program, in []uint16) {
	t.Helper()
	if err := c.LoadProgram(p.Org, p.Words); err != nil {
		t.Fatal(err)
	}
	c.In = in
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestResetMatchesFresh pins the reuse contract: a Reset CPU must be
// indistinguishable from a fresh NewCPU of the same size — registers,
// flags, cursors, dirtied memory — and produce identical results on the
// next program.
func TestResetMatchesFresh(t *testing.T) {
	p := resetProg(t)

	reused := NewCPU(1 << 12)
	runOnce(t, reused, p, []uint16{0x1234})
	if len(reused.Out) == 0 || reused.Mem[2000] == 0 {
		t.Fatal("first run left no trace; test is vacuous")
	}
	reused.Reset()

	fresh := NewCPU(1 << 12)
	if !stateEqual(reused, fresh) {
		t.Fatalf("reset CPU differs from fresh:\nreset: %+v\nfresh: %+v", reused, fresh)
	}

	runOnce(t, reused, p, []uint16{0x00FF})
	runOnce(t, fresh, p, []uint16{0x00FF})
	if !stateEqual(reused, fresh) {
		t.Fatal("reused CPU diverged from fresh CPU on the second program")
	}
}

// TestResetAfterAbort reuses a CPU whose previous run died mid-program —
// on a step limit and on a bad memory access — with registers, flags and
// partial output mid-flight.
func TestResetAfterAbort(t *testing.T) {
	limited := NewCPU(1 << 12)
	limited.MaxSteps = 7
	p := resetProg(t)
	if err := limited.LoadProgram(p.Org, p.Words); err != nil {
		t.Fatal(err)
	}
	limited.In = []uint16{9}
	if err := limited.Run(); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("got %v, want step limit", err)
	}
	limited.Reset()
	limited.MaxSteps = 0

	bad, err := Assemble(`
	        LDI  R0, 4000
	        MOVE D0, R0
	        LDM  R1, [D0]    ; beyond the 1<<10 memory below
	        HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	broken := NewCPU(1 << 10)
	if err := broken.LoadProgram(bad.Org, bad.Words); err != nil {
		t.Fatal(err)
	}
	if err := broken.Run(); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("got %v, want bad address", err)
	}
	broken.Reset()

	for name, c := range map[string]*CPU{"limited": limited, "broken": broken} {
		fresh := NewCPU(len(c.Mem))
		if !stateEqual(c, fresh) {
			t.Fatalf("%s: reset-after-abort CPU differs from fresh", name)
		}
	}

	runOnce(t, limited, p, []uint16{5})
	fresh := NewCPU(1 << 12)
	runOnce(t, fresh, p, []uint16{5})
	if !stateEqual(limited, fresh) {
		t.Fatal("CPU reused after a step-limit abort diverged from fresh")
	}
}

// TestEnsureMemGrowsAndPreserves covers the grow-only reuse helper.
func TestEnsureMemGrowsAndPreserves(t *testing.T) {
	c := NewCPU(64)
	c.Mem[10] = 42
	c.EnsureMem(32) // never shrinks
	if len(c.Mem) != 64 {
		t.Fatalf("EnsureMem shrank memory to %d", len(c.Mem))
	}
	c.EnsureMem(128)
	if len(c.Mem) != 128 || c.Mem[10] != 42 {
		t.Fatalf("EnsureMem lost contents: len=%d Mem[10]=%d", len(c.Mem), c.Mem[10])
	}
	c.EnsureMem(MaxMemWords + 1)
	if len(c.Mem) != MaxMemWords {
		t.Fatalf("EnsureMem ignored the MaxMemWords clamp: %d", len(c.Mem))
	}
}

// TestAppendBuffers covers the allocation-free I/O conversions.
func TestAppendBuffers(t *testing.T) {
	c := NewCPU(64)
	c.Out = []uint16{0x41, 0x142, 0x43}
	got := c.AppendOutBytes([]byte("x:"))
	if string(got) != "x:ABC" {
		t.Fatalf("AppendOutBytes = %q", got)
	}
	words := AppendInWords([]uint16{7}, []byte{1, 2})
	if len(words) != 3 || words[0] != 7 || words[1] != 1 || words[2] != 2 {
		t.Fatalf("AppendInWords = %v", words)
	}
	c.SetInBytes([]byte{9, 8})
	if len(c.In) != 2 || c.In[0] != 9 || c.In[1] != 8 || c.InPos != 0 {
		t.Fatalf("SetInBytes = %v pos=%d", c.In, c.InPos)
	}
}
