package dynarisc

import (
	"fmt"
	"strings"
)

// Disassemble renders a memory image back to readable assembly, one
// instruction per line, prefixed with the word address. It is the
// inspection tool for archived instruction streams.
func Disassemble(org uint16, words []uint16) string {
	var b strings.Builder
	i := 0
	for i < len(words) {
		addr := int(org) + i
		w := words[i]
		op, rd, rs, mode := Decode(w)
		i++
		text := ""
		switch {
		case op >= OpCount:
			text = fmt.Sprintf(".word %#04x", w)
		case op == HALT:
			text = "HALT"
		case op == MOVE && mode&1 == 1:
			text = fmt.Sprintf("MOVH %s, %s", RegName(rd), RegName(rs))
		case op == MOVE:
			text = fmt.Sprintf("MOVE %s, %s", RegName(rd), RegName(rs))
		case op == LDI:
			if i < len(words) {
				text = fmt.Sprintf("LDI %s, %#x", RegName(rd), words[i])
				i++
			} else {
				text = fmt.Sprintf("LDI %s, ???", RegName(rd))
			}
		case op == LDM:
			text = fmt.Sprintf("LDM %s, [%s]", RegName(rd), RegName(rs))
		case op == STM:
			text = fmt.Sprintf("STM %s, [%s]", RegName(rd), RegName(rs))
		case op >= JUMP && op <= JNC:
			if mode&1 == 1 {
				text = fmt.Sprintf("%s %s", op, RegName(rd))
			} else if i < len(words) {
				text = fmt.Sprintf("%s %#x", op, words[i])
				i++
			} else {
				text = fmt.Sprintf("%s ???", op)
			}
		default:
			text = fmt.Sprintf("%s %s, %s", op, RegName(rd), RegName(rs))
		}
		fmt.Fprintf(&b, "%04x: %s\n", addr, text)
	}
	return b.String()
}
