package microlonys_test

import (
	"bytes"
	"strings"
	"testing"

	"microlonys"
	"microlonys/internal/emblem"
	"microlonys/media"
)

// facadeProfile is a small clean medium for public-API tests.
func facadeProfile() media.Profile {
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 3}
	return media.Profile{
		Name:   "facade-test",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
	}
}

func TestFacadeArchiveRestore(t *testing.T) {
	data := []byte(strings.Repeat("INSERT INTO nation VALUES (0, 'ALGERIA');\n", 200))
	opts := microlonys.DefaultOptions(facadeProfile())
	arch, err := microlonys.Archive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Manifest.RawLen != len(data) {
		t.Fatalf("manifest raw len %d", arch.Manifest.RawLen)
	}
	if arch.BootstrapText == "" || arch.Bootstrap == nil {
		t.Fatal("no bootstrap document")
	}
	got, st, err := microlonys.Restore(arch.Medium, arch.BootstrapText, microlonys.RestoreNative)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("facade round trip mismatch")
	}
	if st.Mode != microlonys.RestoreNative {
		t.Fatalf("stats mode %v", st.Mode)
	}
}

// TestFacadeStreamingEnds drives the io.Reader/io.Writer pipeline ends
// through the public API: a multi-sheet raw archive from a stream,
// restored to a writer, with a carrier lost in between and Partial mode
// reporting the damage.
func TestFacadeStreamingEnds(t *testing.T) {
	prof := facadeProfile()
	data := []byte(strings.Repeat("INSERT INTO region VALUES (2, 'ASIA');\n", 500))
	opts := microlonys.DefaultOptions(prof)
	opts.Compress = false
	opts.SheetFrames = 20

	arch, err := microlonys.ArchiveReader(bytes.NewReader(data), opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Volume == nil || arch.Volume.Sheets() < 2 {
		t.Fatalf("want a multi-sheet volume, got %+v", arch.Manifest)
	}
	if arch.Manifest.Sheets != arch.Volume.Sheets() {
		t.Fatal("manifest sheet count")
	}

	// Streamed restore equals the input bit-exactly.
	var buf bytes.Buffer
	st, err := microlonys.RestoreTo(&buf, arch.Volume, arch.BootstrapText,
		microlonys.RestoreOptions{Mode: microlonys.RestoreNative})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("streamed restore differs from input")
	}
	if len(st.Sheets) != arch.Volume.Sheets() || len(st.Groups) != arch.Manifest.Groups {
		t.Fatalf("stats shape: %d sheet and %d group reports", len(st.Sheets), len(st.Groups))
	}

	// Lose the last carrier; the survivors restore in Partial mode.
	lost := arch.Volume.Sheets() - 1
	if err := arch.Volume.DestroySheet(lost); err != nil {
		t.Fatal(err)
	}
	out, st, err := microlonys.RestoreVolume(arch.Volume, arch.BootstrapText,
		microlonys.RestoreOptions{Mode: microlonys.RestoreNative, Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(data) {
		t.Fatalf("partial output %d bytes, want %d", len(out), len(data))
	}
	if st.BytesLost == 0 || st.Sheets[lost].FramesFailed == 0 {
		t.Fatalf("carrier loss not reported: %+v", st)
	}
}

func TestFacadeModesAreDistinct(t *testing.T) {
	modes := map[microlonys.Mode]string{
		microlonys.RestoreNative:   "native",
		microlonys.RestoreDynaRisc: "dynarisc",
		microlonys.RestoreNested:   "nested",
	}
	if len(modes) != 3 {
		t.Fatal("modes collide")
	}
	for m, want := range modes {
		if m.String() != want {
			t.Fatalf("%v != %s", m, want)
		}
	}
}

func TestFacadeDefaultOptions(t *testing.T) {
	opts := microlonys.DefaultOptions(media.Paper())
	if opts.GroupData != 17 || opts.GroupParity != 3 {
		t.Fatalf("default outer code %d+%d, want the paper's 17+3", opts.GroupData, opts.GroupParity)
	}
	if !opts.Compress {
		t.Fatal("DBCoder should be on by default")
	}
	if opts.Profile.Name != media.Paper().Name {
		t.Fatal("profile not threaded through")
	}
}
