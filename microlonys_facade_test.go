package microlonys_test

import (
	"bytes"
	"strings"
	"testing"

	"microlonys"
	"microlonys/internal/emblem"
	"microlonys/media"
)

// facadeProfile is a small clean medium for public-API tests.
func facadeProfile() media.Profile {
	l := emblem.Layout{DataW: 100, DataH: 80, PxPerModule: 3}
	return media.Profile{
		Name:   "facade-test",
		FrameW: l.ImageW(), FrameH: l.ImageH(),
		ScanW: l.ImageW(), ScanH: l.ImageH(),
		Layout: l,
	}
}

func TestFacadeArchiveRestore(t *testing.T) {
	data := []byte(strings.Repeat("INSERT INTO nation VALUES (0, 'ALGERIA');\n", 200))
	opts := microlonys.DefaultOptions(facadeProfile())
	arch, err := microlonys.Archive(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Manifest.RawLen != len(data) {
		t.Fatalf("manifest raw len %d", arch.Manifest.RawLen)
	}
	if arch.BootstrapText == "" || arch.Bootstrap == nil {
		t.Fatal("no bootstrap document")
	}
	got, st, err := microlonys.Restore(arch.Medium, arch.BootstrapText, microlonys.RestoreNative)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("facade round trip mismatch")
	}
	if st.Mode != microlonys.RestoreNative {
		t.Fatalf("stats mode %v", st.Mode)
	}
}

func TestFacadeModesAreDistinct(t *testing.T) {
	modes := map[microlonys.Mode]string{
		microlonys.RestoreNative:   "native",
		microlonys.RestoreDynaRisc: "dynarisc",
		microlonys.RestoreNested:   "nested",
	}
	if len(modes) != 3 {
		t.Fatal("modes collide")
	}
	for m, want := range modes {
		if m.String() != want {
			t.Fatalf("%v != %s", m, want)
		}
	}
}

func TestFacadeDefaultOptions(t *testing.T) {
	opts := microlonys.DefaultOptions(media.Paper())
	if opts.GroupData != 17 || opts.GroupParity != 3 {
		t.Fatalf("default outer code %d+%d, want the paper's 17+3", opts.GroupData, opts.GroupParity)
	}
	if !opts.Compress {
		t.Fatal("DBCoder should be on by default")
	}
	if opts.Profile.Name != media.Paper().Name {
		t.Fatal("profile not threaded through")
	}
}
